//! Cache level and size detection (paper Figs. 3 and 4).
//!
//! The overall algorithm (Fig. 4) reads the gradient of the mcalibrator
//! curve:
//!
//! * the **first** peak always gives the L1 size directly (L1 caches are
//!   virtually indexed, so their transition is sharp);
//! * a later **sharp** peak (one array size) means the OS applies page
//!   coloring — the position gives the size directly;
//! * a later **wide** peak means random page placement smeared the
//!   transition of a physically indexed cache — the **probabilistic
//!   algorithm** (Fig. 3) compares the measured miss-rate curve with the
//!   binomial prediction `P(X > K), X ~ B(NP, K·PS/CS)` for every tentative
//!   `(CS, K)` and picks the statistical mode of the best-fitting sizes.

use crate::mcalibrator::McalibratorOutput;
use serde::{Deserialize, Serialize};
use servet_stats::binomial::{sf_curve, Binomial};
use servet_stats::gradient::{find_peaks, merge_peaks};
use servet_stats::summary::mode;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

/// How a cache level's size was determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionMethod {
    /// Position of a sharp gradient peak (virtually indexed cache, or a
    /// page-coloring OS).
    GradientPeak,
    /// The Fig. 3 probabilistic algorithm over a smeared transition.
    Probabilistic,
}

/// One detected cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelEstimate {
    /// 1-based level number in discovery order.
    pub level: u8,
    /// Estimated size in bytes.
    pub size: usize,
    /// How the estimate was obtained.
    pub method: DetectionMethod,
}

/// The tentative `(cache size, associativity)` search grid of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateGrid {
    /// Tentative cache sizes, bytes.
    pub sizes: Vec<usize>,
    /// Tentative associativities.
    pub assocs: Vec<usize>,
}

/// Tentative sizes: powers of two scaled by the multipliers real cache
/// geometries use. Covers every cache of the paper's machines (256 KB,
/// 512 KB, 2 MB, 3 MB = 1.5·2 MB, 9 MB = 1.125·8 MB, 12 MB = 1.5·8 MB)
/// and the common 1.25× family (2.5 MB, 10 MB), without inviting the
/// CS/K degeneracy a dense linear grid creates: an unrealistic size like
/// 1.875 MB can imitate 2 MB at a different associativity.
fn realistic_sizes(min: usize, max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut base = min;
    while base <= max {
        for m in [8usize, 9, 10, 12] {
            let s = base / 8 * m;
            if s <= max {
                sizes.push(s);
            }
        }
        base *= 2;
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

impl Default for CandidateGrid {
    fn default() -> Self {
        Self {
            sizes: realistic_sizes(64 * KB, 64 * MB),
            assocs: vec![2, 4, 8, 12, 16, 18, 24, 32],
        }
    }
}

impl CandidateGrid {
    /// A small grid for little test machines.
    pub fn small() -> Self {
        Self {
            sizes: realistic_sizes(8 * KB, MB),
            assocs: vec![2, 4, 8, 16],
        }
    }

    /// The grid restricted to sizes within `[lo, hi]`.
    fn restricted(&self, lo: usize, hi: usize) -> Vec<usize> {
        let v: Vec<usize> = self
            .sizes
            .iter()
            .copied()
            .filter(|&s| s >= lo && s <= hi)
            .collect();
        if v.is_empty() {
            self.sizes.clone()
        } else {
            v
        }
    }
}

/// Which binomial tail predicts the miss rate of a page-set model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissRateModel {
    /// Size-biased page view: a page misses when its own set holds more
    /// than `K` pages, i.e. when at least `K` of the *other* `NP - 1`
    /// pages share its set — `P(B(NP-1, p) >= K)`. Pages are likelier to
    /// sit in crowded sets, so this is what a traversal actually measures;
    /// it matters at low associativity.
    SizeBiased,
    /// The paper's formula as printed: `P(X > K), X ~ B(NP, p)`. A good
    /// approximation at the high associativities of the paper's machines,
    /// kept for the ablation benchmark.
    PaperApprox,
}

/// Predicted miss rate of a cyclic traversal of `np` pages over a
/// physically indexed cache with page-set hit probability `p` and
/// associativity `k`.
pub fn predicted_miss_rate(np: u64, p: f64, k: usize, model: MissRateModel) -> f64 {
    match model {
        MissRateModel::SizeBiased => {
            if np == 0 {
                return 0.0;
            }
            Binomial::new(np - 1, p).sf(k as u64 - 1)
        }
        MissRateModel::PaperApprox => Binomial::new(np, p).sf(k as u64),
    }
}

/// [`predicted_miss_rate`] for every page count in `np` at once: one
/// `O(max(np))` recurrence pass per candidate instead of an independent
/// binomial tail walk per sample (see [`sf_curve`]).
pub fn predicted_miss_curve(np: &[u64], p: f64, k: usize, model: MissRateModel) -> Vec<f64> {
    match model {
        MissRateModel::SizeBiased => {
            // sf_{n-1}(k-1); np = 0 maps to n = 0 ≤ k-1, which sf_curve
            // already answers with 0 — matching the scalar form.
            let shifted: Vec<u64> = np.iter().map(|&n| n.saturating_sub(1)).collect();
            sf_curve(&shifted, p, k as u64 - 1)
        }
        MissRateModel::PaperApprox => sf_curve(np, p, k as u64),
    }
}

/// The probabilistic cache-size algorithm (paper Fig. 3).
///
/// `sizes`/`cycles` are the mcalibrator samples of the transition window of
/// one cache level. Returns the statistical mode of the tentative size over
/// the five `(CS, K)` candidates with the lowest divergence between the
/// measured miss-rate curve and the binomial prediction, or `None` when the
/// window carries no signal (flat cycles).
pub fn probabilistic_size(
    sizes: &[usize],
    cycles: &[f64],
    page_size: usize,
    grid: &CandidateGrid,
) -> Option<usize> {
    probabilistic_size_with_model(sizes, cycles, page_size, grid, MissRateModel::SizeBiased)
}

/// [`probabilistic_size`] with an explicit miss-rate model (ablation hook).
pub fn probabilistic_size_with_model(
    sizes: &[usize],
    cycles: &[f64],
    page_size: usize,
    grid: &CandidateGrid,
    model: MissRateModel,
) -> Option<usize> {
    let _span = servet_obs::span("cache_detect.probabilistic_fit");
    let scored = scored_candidates(sizes, cycles, page_size, grid, model, None)?;
    let _rank = servet_obs::span("cache_detect.fit.rank");
    let best: Vec<usize> = scored.iter().take(5).map(|&(_, cs)| cs).collect();
    mode(&best)
}

/// How many candidates one scoring worker must have to make a thread
/// worth spawning: below this the fork/join overhead beats the win.
const MIN_CANDIDATES_PER_THREAD: usize = 16;

/// Worker count for `n_candidates`, honoring an explicit override.
fn scoring_threads(n_candidates: usize, requested: Option<usize>) -> usize {
    let threads = requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(n_candidates / MIN_CANDIDATES_PER_THREAD)
    });
    threads.clamp(1, n_candidates.max(1))
}

/// The scored `(divergence, CS)` ranking behind [`probabilistic_size`]:
/// every `(CS, K)` candidate of the grid that can explain the window,
/// sorted by `(divergence, CS)`.
///
/// The tie-break on `CS` makes the ranking — and therefore the detected
/// size — independent of grid iteration order and of how candidates are
/// partitioned across scoring threads.
///
/// `threads` forces the worker count (`Some(1)` = the serial path,
/// `None` = auto-size to the machine). The output is **bit-identical**
/// for every thread count: candidates are scored independently, written
/// to per-chunk slots in grid order, and merged deterministically —
/// `cache_detect` tests pin serial against parallel. Returns `None` when
/// the window carries no signal (under two samples, or flat cycles).
pub fn scored_candidates(
    sizes: &[usize],
    cycles: &[f64],
    page_size: usize,
    grid: &CandidateGrid,
    model: MissRateModel,
    threads: Option<usize>,
) -> Option<Vec<(f64, usize)>> {
    assert_eq!(sizes.len(), cycles.len());
    if sizes.len() < 2 {
        return None;
    }
    // Two-point normalization: both the measured cycles and each
    // candidate's predicted miss-rate curve are normalized to the window's
    // endpoints. The paper normalizes by the window's MIN/MAX, which
    // assumes the window reaches full saturation; anchoring prediction and
    // measurement to the same two samples removes that assumption, so the
    // fit is insensitive to exactly where the window was cut.
    let c_first = cycles[0];
    let c_last = *cycles.last().expect("non-empty window");
    let span = c_last - c_first;
    if span <= 0.0 {
        return None;
    }
    let mr: Vec<f64> = cycles
        .iter()
        .map(|&c| ((c - c_first) / span).clamp(0.0, 1.1))
        .collect();
    let np: Vec<u64> = sizes.iter().map(|&s| (s / page_size) as u64).collect();
    // Only consider tentative sizes commensurate with the window: the true
    // size lies inside (or just below) the smeared transition.
    let lo = sizes[0] / 2;
    let hi = *sizes.last().expect("non-empty window");
    let tentative = grid.restricted(lo, hi);

    let candidates: Vec<(usize, usize)> = tentative
        .iter()
        .flat_map(|&cs| grid.assocs.iter().map(move |&k| (cs, k)))
        .collect();
    let threads = scoring_threads(candidates.len(), threads);

    // One slot per candidate, written in grid order whatever the thread
    // count, so the merged result never depends on scheduling.
    let mut slots: Vec<Option<(f64, usize)>> = vec![None; candidates.len()];
    {
        let _span = servet_obs::span("cache_detect.fit.score");
        if threads <= 1 {
            score_chunk(&np, &mr, page_size, model, &candidates, &mut slots);
        } else {
            servet_obs::counter("cache_detect.parallel_fits").incr();
            let chunk = candidates.len().div_ceil(threads);
            let (np, mr) = (&np, &mr);
            std::thread::scope(|s| {
                for (cands, out) in candidates.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    s.spawn(move || score_chunk(np, mr, page_size, model, cands, out));
                }
            });
        }
    }
    let mut scored: Vec<(f64, usize)> = slots.into_iter().flatten().collect();
    servet_obs::counter("cache_detect.candidates_scored").add(scored.len() as u64);
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    Some(scored)
}

/// Score a contiguous run of candidates into its output slots — the body
/// both the serial and the parallel path share, so they cannot diverge.
fn score_chunk(
    np: &[u64],
    mr: &[f64],
    page_size: usize,
    model: MissRateModel,
    candidates: &[(usize, usize)],
    out: &mut [Option<(f64, usize)>],
) {
    debug_assert_eq!(candidates.len(), out.len());
    for (&(cs, k), slot) in candidates.iter().zip(out) {
        let p = (k * page_size) as f64 / cs as f64;
        // The whole predicted curve in one recurrence pass; the endpoints
        // are the first/last points of the same curve rather than two
        // extra binomial evaluations.
        let curve = predicted_miss_curve(np, p, k, model);
        let p_first = curve[0];
        let p_last = *curve.last().expect("non-empty window");
        let p_span = p_last - p_first;
        if p_span < 0.05 {
            // The candidate predicts an essentially flat window: it
            // cannot explain the observed transition at all.
            continue;
        }
        let mut div = 0.0;
        for (i, &predicted_raw) in curve.iter().enumerate() {
            let predicted = (predicted_raw - p_first) / p_span;
            div += (mr[i] - predicted).abs();
        }
        *slot = Some((div, cs));
    }
}

/// Configuration for the overall level-detection algorithm (Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectConfig {
    /// Gradients above this are rises (the paper's "gradient larger
    /// than 1", with headroom for measurement noise).
    pub gradient_threshold: f64,
    /// Below-threshold samples bridged when merging wobbly transition
    /// regions beyond L1.
    pub merge_gap: usize,
    /// The Fig. 3 candidate grid.
    pub grid: CandidateGrid,
}

impl Default for DetectConfig {
    fn default() -> Self {
        Self {
            gradient_threshold: 1.15,
            merge_gap: 1,
            grid: CandidateGrid::default(),
        }
    }
}

impl DetectConfig {
    /// Configuration for small test machines.
    pub fn small() -> Self {
        Self {
            gradient_threshold: 1.15,
            merge_gap: 1,
            grid: CandidateGrid::small(),
        }
    }
}

/// Detect the number of cache levels and their sizes (paper Fig. 4).
pub fn detect_cache_levels(
    out: &McalibratorOutput,
    page_size: usize,
    config: &DetectConfig,
) -> Vec<CacheLevelEstimate> {
    let _span = servet_obs::span("cache_detect.levels");
    let gradients = out.gradients();
    let first_peaks = find_peaks(&gradients, config.gradient_threshold);
    let Some(first) = first_peaks.first() else {
        return Vec::new();
    };
    let mut levels = Vec::new();
    // The first peak is always L1 (virtually indexed, so its transition is
    // the largest jump of its region): gradient[k] is the rise between
    // S[k] and S[k+1], so S at the maximum gives the last size that fits.
    let l1_index = first.index;
    levels.push(CacheLevelEstimate {
        level: 1,
        size: out.sizes[l1_index],
        method: DetectionMethod::GradientPeak,
    });
    // Re-scan the gradients beyond L1. Lower, physically indexed levels
    // produce wide sampled-binomial transitions that can wobble under the
    // threshold mid-rise, so nearby regions are merged before
    // classification.
    let rest = &gradients[l1_index + 1..];
    let rest_peaks = merge_peaks(
        find_peaks(rest, config.gradient_threshold),
        rest,
        config.merge_gap,
    );
    for (peak_no, peak) in rest_peaks.iter().enumerate() {
        let level = (levels.len() + 1) as u8;
        let index = peak.index + l1_index + 1;
        let (start, end) = (peak.start + l1_index + 1, peak.end + l1_index + 1);
        if peak.is_sharp() {
            // Page coloring (or a virtually indexed level): position speaks.
            levels.push(CacheLevelEstimate {
                level,
                size: out.sizes[index],
                method: DetectionMethod::GradientPeak,
            });
        } else {
            // Smeared transition: Fig. 3 over the window around the peak,
            // padded so the min/max normalization sees both plateaus — but
            // never past the L1 transition, whose far cheaper hits would
            // corrupt the window's hit-time estimate. On the right, the
            // window follows the post-transition plateau to saturation
            // (the binomial tail flattens slowly) and stops before the
            // next detected level's rise.
            let next_rise = rest_peaks
                .get(peak_no + 1)
                .map(|p| p.start + l1_index + 1)
                .unwrap_or(gradients.len());
            let lo = start.saturating_sub(1).max(l1_index + 1);
            let hi = saturated_window_end(&gradients, end, config.gradient_threshold, next_rise)
                .min(out.sizes.len() - 1);
            // Adjacency guard: a distinct level below the previous one
            // must be at least twice its size (equal-size levels are
            // indistinguishable by a size sweep). When L2 = 2×L1 the
            // window starts right at the L1 edge and `restricted`'s
            // `sizes[0]/2` bound would admit tentative sizes at or below
            // L1, which can out-fit the true size on a window this
            // short — so they are cut from the grid up front.
            let floor = levels.last().map(|l| l.size * 2).unwrap_or(0);
            let mut grid = config.grid.clone();
            grid.sizes.retain(|&s| s >= floor);
            if let Some(size) =
                probabilistic_size(&out.sizes[lo..=hi], &out.cycles[lo..=hi], page_size, &grid)
            {
                levels.push(CacheLevelEstimate {
                    level,
                    size,
                    method: DetectionMethod::Probabilistic,
                });
            }
        }
    }
    levels
}

/// Walk right from a transition region's last gradient index toward
/// saturation: the sampled binomial tail keeps rising slowly (gradients
/// drift from just under the detection threshold down to 1.0) long after
/// the above-threshold region ends, and the Fig. 3 fit needs that tail —
/// a window cut mid-transition ranks smaller tentative sizes first. The
/// walk stops at two consecutive truly-flat steps (the plateau proper),
/// at a gradient back above the threshold, at a clear gradient
/// *increase* (a decaying tail is non-increasing, so turning upward
/// means the next level's smeared rise has begun below the detection
/// threshold — e.g. an L3 whose early slope never clears it), or at
/// `limit` (the next detected level's above-threshold region),
/// whichever comes first. Returns the last sample index to include in
/// the window.
///
/// An earlier revision capped the walk at 8 samples below a tighter
/// plateau bound — correct for sweeps whose linear step is a large
/// fraction of the cache size, but on densely sampled sweeps it
/// truncated every window mid-tail and biased the detected sizes low.
fn saturated_window_end(
    gradients: &[f64],
    region_end: usize,
    threshold: f64,
    limit: usize,
) -> usize {
    // A rise is judged against the lowest gradient the walk has seen and
    // must persist: sampled-binomial noise throws isolated one-sample
    // spikes well above the tail's floor on dense sweeps, but they fall
    // straight back, while a real next-level climb keeps every following
    // sample up there. Samples still mid-streak when the walk exits
    // (e.g. a rise running into `limit`) are trimmed off the window.
    const RISE: f64 = 0.06;
    let mut j = region_end + 1;
    let mut floor = f64::INFINITY;
    let mut flats = 0;
    let mut rising = 0;
    while j < limit && j < gradients.len() && gradients[j] < threshold {
        let g = gradients[j];
        if g > floor + RISE {
            rising += 1;
            if rising >= 2 {
                break;
            }
        } else {
            rising = 0;
            floor = floor.min(g);
            if g < 1.005 {
                flats += 1;
                if flats >= 2 {
                    j += 1;
                    break;
                }
            } else {
                flats = 0;
            }
        }
        j += 1;
    }
    j.saturating_sub(rising)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcalibrator::{mcalibrator, McalibratorConfig};
    use crate::sim_platform::SimPlatform;
    use servet_sim::vm::PageAllocPolicy;

    /// Synthetic miss-rate curve generated from the model: the algorithm
    /// must recover the generating size.
    #[test]
    fn probabilistic_recovers_generating_size() {
        let page = 4 * KB;
        let true_cs = 2 * MB;
        let true_k = 8usize;
        let sizes: Vec<usize> = (1..=8).map(|i| i * 512 * KB).collect();
        let p = (true_k * page) as f64 / true_cs as f64;
        let cycles: Vec<f64> = sizes
            .iter()
            .map(|&s| {
                let mr =
                    predicted_miss_rate((s / page) as u64, p, true_k, MissRateModel::SizeBiased);
                14.0 + 286.0 * mr
            })
            .collect();
        let got = probabilistic_size(&sizes, &cycles, page, &CandidateGrid::default());
        assert_eq!(got, Some(true_cs));
    }

    /// The two miss-rate models agree at high associativity and diverge at
    /// low associativity — the reason the size-biased form is the default.
    #[test]
    fn miss_rate_models_diverge_at_low_k() {
        let low_biased = predicted_miss_rate(56, 1.0 / 16.0, 4, MissRateModel::SizeBiased);
        let low_paper = predicted_miss_rate(56, 1.0 / 16.0, 4, MissRateModel::PaperApprox);
        assert!(low_biased > low_paper * 1.4, "{low_biased} vs {low_paper}");
        let hi_biased = predicted_miss_rate(3072, 1.0 / 128.0, 24, MissRateModel::SizeBiased);
        let hi_paper = predicted_miss_rate(3072, 1.0 / 128.0, 24, MissRateModel::PaperApprox);
        assert!(
            (hi_biased - hi_paper).abs() < 0.1,
            "{hi_biased} vs {hi_paper}"
        );
        assert_eq!(
            predicted_miss_rate(0, 0.5, 4, MissRateModel::SizeBiased),
            0.0
        );
    }

    #[test]
    fn probabilistic_rejects_flat_window() {
        let sizes = vec![64 * KB, 128 * KB, 256 * KB];
        let cycles = vec![10.0, 10.0, 10.0];
        assert_eq!(
            probabilistic_size(&sizes, &cycles, 4 * KB, &CandidateGrid::default()),
            None
        );
        assert_eq!(
            probabilistic_size(&sizes[..1], &cycles[..1], 4 * KB, &CandidateGrid::default()),
            None
        );
    }

    #[test]
    fn tiny_machine_levels_detected() {
        // tiny_smp ground truth: 8 KB L1, 64 KB L2.
        let mut p = SimPlatform::tiny().with_noise(0.002);
        let out = mcalibrator(&mut p, 0, &McalibratorConfig::small(512 * KB));
        let levels = detect_cache_levels(&out, 4 * KB, &DetectConfig::small());
        assert_eq!(levels.len(), 2, "{levels:?}");
        assert_eq!(levels[0].size, 8 * KB);
        assert_eq!(levels[0].method, DetectionMethod::GradientPeak);
        assert_eq!(levels[1].size, 64 * KB, "{levels:?}");
    }

    /// Regression for the zoo's `L2 = 2×L1` adjacency miss class
    /// (ROADMAP item 5). On these zoo machines — pinned from an
    /// empirical 480-machine scan — the fit used to return a tentative
    /// size at or below the detected L1 (16 KB or 18 KB for a true
    /// 32 KB L2): the window starts right at the L1 edge, so the
    /// `sizes[0]/2` bound admitted candidates no distinct second level
    /// can have. The 2×-floor guard cuts them from the grid.
    #[test]
    fn adjacent_l2_is_not_detected_below_twice_l1() {
        use crate::zoo::{generate_population, ZooConfig};
        for (zoo_seed, index) in [(29u64, 8usize), (32, 9), (33, 11)] {
            let cfg = ZooConfig::new(12, 1, zoo_seed);
            let m = generate_population(&cfg).swap_remove(index);
            let truth: Vec<usize> = m.spec.caches.iter().map(|c| c.size).collect();
            assert_eq!(truth[1], truth[0] * 2, "scan pinned an adjacency machine");
            let sim = servet_sim::Machine::with_seed(m.spec.clone(), m.sim_seed);
            let mut p = SimPlatform::new(sim, None)
                .with_noise(m.noise)
                .with_seed(m.sim_seed);
            let out = mcalibrator(&mut p, 0, &cfg.suite.mcalibrator);
            let levels = detect_cache_levels(&out, m.spec.page_size, &cfg.suite.detect);
            let got: Vec<usize> = levels.iter().map(|l| l.size).collect();
            assert_eq!(got, truth, "zoo seed {zoo_seed} machine {index}");
        }
    }

    #[test]
    fn page_coloring_gives_sharp_second_peak() {
        // With a coloring OS the L2 transition is sharp and the gradient
        // position gives the size directly — the paper's "page coloring"
        // branch of Fig. 4.
        let mut spec = servet_sim::presets::tiny_smp();
        spec.page_alloc = PageAllocPolicy::Colored;
        let machine = servet_sim::Machine::new(spec);
        let mut p = crate::sim_platform::SimPlatform::new(machine, None).with_noise(0.0);
        let out = mcalibrator(&mut p, 0, &McalibratorConfig::small(512 * KB));
        let levels = detect_cache_levels(&out, 4 * KB, &DetectConfig::small());
        assert_eq!(levels.len(), 2, "{levels:?}");
        assert_eq!(levels[1].size, 64 * KB);
        assert_eq!(levels[1].method, DetectionMethod::GradientPeak);
    }

    /// A realistic smeared window (2 MB 8-way cache, sampled every 512 KB)
    /// with measurement-like jitter baked in deterministically.
    fn smeared_window(points: usize) -> (Vec<usize>, Vec<f64>) {
        let page = 4 * KB;
        let (true_cs, true_k) = (2 * MB, 8usize);
        let p = (true_k * page) as f64 / true_cs as f64;
        let sizes: Vec<usize> = (1..=points).map(|i| i * 512 * KB).collect();
        let cycles: Vec<f64> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let mr =
                    predicted_miss_rate((s / page) as u64, p, true_k, MissRateModel::SizeBiased);
                // ±0.4 % deterministic wobble so ties are realistic.
                let wobble = 1.0 + 0.004 * ((i * 2654435761) % 1000) as f64 / 1000.0;
                (14.0 + 286.0 * mr) * wobble
            })
            .collect();
        (sizes, cycles)
    }

    /// Acceptance gate: the parallel scoring path must be bit-identical
    /// to the serial one — same candidates, same divergences, same order —
    /// for every thread count, on both miss-rate models.
    #[test]
    fn parallel_scoring_is_bit_identical_to_serial() {
        let (sizes, cycles) = smeared_window(10);
        let grid = CandidateGrid::default();
        for model in [MissRateModel::SizeBiased, MissRateModel::PaperApprox] {
            let serial = scored_candidates(&sizes, &cycles, 4 * KB, &grid, model, Some(1)).unwrap();
            assert!(!serial.is_empty());
            for threads in [2usize, 3, 4, 7, 16, 64] {
                let parallel =
                    scored_candidates(&sizes, &cycles, 4 * KB, &grid, model, Some(threads))
                        .unwrap();
                assert_eq!(serial.len(), parallel.len(), "threads = {threads}");
                for (s, p) in serial.iter().zip(&parallel) {
                    assert_eq!(s.1, p.1, "candidate order diverged at threads = {threads}");
                    assert_eq!(
                        s.0.to_bits(),
                        p.0.to_bits(),
                        "divergence bits diverged for cs = {} at threads = {threads}",
                        s.1
                    );
                }
            }
            // And the detected size (auto thread count) matches the serial
            // ranking's verdict.
            let auto = probabilistic_size_with_model(&sizes, &cycles, 4 * KB, &grid, model);
            let best: Vec<usize> = serial.iter().take(5).map(|&(_, cs)| cs).collect();
            assert_eq!(auto, mode(&best));
        }
    }

    /// Equal-divergence candidates must rank by CS, not by grid iteration
    /// order — reversing the grid must not change the ranking.
    #[test]
    fn candidate_ranking_breaks_ties_deterministically() {
        let (sizes, cycles) = smeared_window(8);
        let grid = CandidateGrid::default();
        let mut reversed = grid.clone();
        reversed.sizes.reverse();
        reversed.assocs.reverse();
        let a = scored_candidates(
            &sizes,
            &cycles,
            4 * KB,
            &grid,
            MissRateModel::SizeBiased,
            Some(1),
        )
        .unwrap();
        let b = scored_candidates(
            &sizes,
            &cycles,
            4 * KB,
            &reversed,
            MissRateModel::SizeBiased,
            Some(1),
        )
        .unwrap();
        let key = |v: &[(f64, usize)]| -> Vec<(u64, usize)> {
            v.iter().map(|&(d, cs)| (d.to_bits(), cs)).collect()
        };
        // Same candidate set either way; the sorted (divergence, CS) keys
        // must agree exactly.
        let (mut ka, mut kb) = (key(&a), key(&b));
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb);
        let top_a: Vec<usize> = a.iter().take(5).map(|&(_, cs)| cs).collect();
        let top_b: Vec<usize> = b.iter().take(5).map(|&(_, cs)| cs).collect();
        assert_eq!(top_a, top_b, "tie-break must neutralize grid order");
    }

    /// The batched curve is the scalar model evaluated at every sample.
    #[test]
    fn predicted_miss_curve_matches_scalar_model() {
        let np: Vec<u64> = (0..=12).map(|i| i * 137).collect();
        for model in [MissRateModel::SizeBiased, MissRateModel::PaperApprox] {
            for &(p, k) in &[(0.015625f64, 8usize), (0.25, 2), (0.001, 24)] {
                let curve = predicted_miss_curve(&np, p, k, model);
                for (i, &pages) in np.iter().enumerate() {
                    let want = predicted_miss_rate(pages, p, k, model);
                    assert!(
                        (curve[i] - want).abs() < 1e-9,
                        "curve[{i}] = {} vs scalar {want} (p={p}, k={k}, {model:?})",
                        curve[i]
                    );
                }
            }
        }
    }

    #[test]
    fn grid_restriction_falls_back_to_full() {
        let g = CandidateGrid::default();
        let r = g.restricted(1, 2);
        assert_eq!(r.len(), g.sizes.len());
        let r = g.restricted(MB, 2 * MB);
        assert!(!r.is_empty() && r.len() < g.sizes.len());
        assert!(r.iter().all(|&s| (MB..=2 * MB).contains(&s)));
    }

    #[test]
    fn default_grid_covers_paper_caches() {
        let g = CandidateGrid::default();
        for cs in [256 * KB, 512 * KB, 2 * MB, 3 * MB, 9 * MB, 12 * MB] {
            assert!(g.sizes.contains(&cs), "grid missing {cs}");
        }
        for k in [4usize, 8, 12, 18, 24] {
            assert!(g.assocs.contains(&k));
        }
    }
}
