//! Virtual memory: per-process address spaces and page-frame allocation.
//!
//! The paper's key observation (§III-A, after Yotov et al.): "contiguity in
//! virtual memory does not imply adjacency in physical memory", so tests of
//! physically indexed caches see conflict misses for arrays much smaller
//! than the cache. The OS policy decides how bad this is:
//!
//! * [`PageAllocPolicy::Random`] — frames drawn uniformly at random, the
//!   Linux-like default. Produces the binomial page-set occupancy the
//!   Fig. 3 algorithm models.
//! * [`PageAllocPolicy::Colored`] — page coloring: the frame's color bits
//!   equal the virtual page's, so physically indexed caches behave like
//!   virtually indexed ones (sharp transitions).
//! * [`PageAllocPolicy::Contiguous`] — superpage-style physically
//!   contiguous allocation, the non-portable workaround the paper
//!   criticizes.

pub use crate::spec::PageAllocPolicy;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Number of physical frames in the simulated machine (4 KB pages →
/// 64 GB of physical memory). Large enough that random allocation almost
/// never recycles a frame between two arrays of one experiment.
const PHYS_FRAMES: u64 = 1 << 24;

/// Number of frame colors used by the [`PageAllocPolicy::Colored`] policy.
/// 256 colors × 4 KB pages = 1 MB per color way, enough to color every
/// cache in the presets.
const COLORS: u64 = 256;

/// A process address space: a mapping from virtual pages to physical
/// frames, built eagerly for the span of one benchmark array.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// Unique id, used to tag lines of virtually indexed caches so two
    /// processes' identical virtual addresses never alias.
    asid: u64,
    page_size: u64,
    /// `frames[v]` is the physical frame backing virtual page `v`.
    frames: Vec<u64>,
}

impl AddressSpace {
    /// Map `len_bytes` of virtual memory starting at virtual address 0,
    /// choosing frames according to `policy`. `seed` makes the mapping
    /// reproducible; distinct `asid`s draw distinct frames.
    pub fn new(
        asid: u64,
        len_bytes: usize,
        page_size: usize,
        policy: PageAllocPolicy,
        seed: u64,
    ) -> Self {
        assert!(page_size.is_power_of_two());
        let pages = len_bytes.div_ceil(page_size).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ asid.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let frames = match policy {
            PageAllocPolicy::Random => {
                let mut used = HashSet::with_capacity(pages);
                let mut frames = Vec::with_capacity(pages);
                while frames.len() < pages {
                    let f = rng.gen_range(0..PHYS_FRAMES);
                    if used.insert(f) {
                        frames.push(f);
                    }
                }
                frames
            }
            PageAllocPolicy::Colored => {
                // Preserve the virtual page's color; randomize the rest.
                let mut used = HashSet::with_capacity(pages);
                let mut frames = Vec::with_capacity(pages);
                for v in 0..pages as u64 {
                    let color = v % COLORS;
                    loop {
                        let high = rng.gen_range(0..PHYS_FRAMES / COLORS);
                        let f = high * COLORS + color;
                        if used.insert(f) {
                            frames.push(f);
                            break;
                        }
                    }
                }
                frames
            }
            PageAllocPolicy::Contiguous => {
                let base = rng.gen_range(0..PHYS_FRAMES - pages as u64);
                (base..base + pages as u64).collect()
            }
        };
        Self {
            asid,
            page_size: page_size as u64,
            frames,
        }
    }

    /// The address-space id.
    pub fn asid(&self) -> u64 {
        self.asid
    }

    /// Number of mapped pages.
    pub fn num_pages(&self) -> usize {
        self.frames.len()
    }

    /// Mapped span in bytes.
    pub fn len_bytes(&self) -> usize {
        self.frames.len() * self.page_size as usize
    }

    /// Translate a virtual address to a physical address.
    ///
    /// Panics if `vaddr` is outside the mapped span — benchmark kernels
    /// never touch unmapped memory, so an out-of-range access is a bug.
    #[inline]
    pub fn translate(&self, vaddr: u64) -> u64 {
        let vpage = (vaddr / self.page_size) as usize;
        let offset = vaddr % self.page_size;
        self.frames[vpage] * self.page_size + offset
    }

    /// Physical frame of virtual page `vpage`.
    pub fn frame_of(&self, vpage: usize) -> u64 {
        self.frames[vpage]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    #[test]
    fn translation_preserves_offsets() {
        let a = AddressSpace::new(1, 8 * PS, PS, PageAllocPolicy::Random, 42);
        for vaddr in [0u64, 5, 4096, 4097, 8191, 8 * 4096 - 1] {
            let p = a.translate(vaddr);
            assert_eq!(p % PS as u64, vaddr % PS as u64);
        }
    }

    #[test]
    fn random_mapping_is_deterministic_per_seed() {
        let a = AddressSpace::new(1, 64 * PS, PS, PageAllocPolicy::Random, 7);
        let b = AddressSpace::new(1, 64 * PS, PS, PageAllocPolicy::Random, 7);
        let c = AddressSpace::new(1, 64 * PS, PS, PageAllocPolicy::Random, 8);
        for v in 0..64 {
            assert_eq!(a.frame_of(v), b.frame_of(v));
        }
        assert!((0..64).any(|v| a.frame_of(v) != c.frame_of(v)));
    }

    #[test]
    fn distinct_asids_draw_distinct_mappings() {
        let a = AddressSpace::new(1, 64 * PS, PS, PageAllocPolicy::Random, 7);
        let b = AddressSpace::new(2, 64 * PS, PS, PageAllocPolicy::Random, 7);
        assert!((0..64).any(|v| a.frame_of(v) != b.frame_of(v)));
    }

    #[test]
    fn frames_are_unique_within_a_space() {
        let a = AddressSpace::new(3, 512 * PS, PS, PageAllocPolicy::Random, 9);
        let mut seen = std::collections::HashSet::new();
        for v in 0..a.num_pages() {
            assert!(seen.insert(a.frame_of(v)), "frame reused at page {v}");
        }
    }

    #[test]
    fn colored_mapping_preserves_color() {
        let a = AddressSpace::new(4, 600 * PS, PS, PageAllocPolicy::Colored, 11);
        for v in 0..a.num_pages() {
            assert_eq!(a.frame_of(v) % COLORS, v as u64 % COLORS);
        }
    }

    #[test]
    fn contiguous_mapping_is_contiguous() {
        let a = AddressSpace::new(5, 32 * PS, PS, PageAllocPolicy::Contiguous, 13);
        let base = a.frame_of(0);
        for v in 0..32 {
            assert_eq!(a.frame_of(v), base + v as u64);
        }
    }

    #[test]
    fn zero_length_maps_one_page() {
        let a = AddressSpace::new(6, 0, PS, PageAllocPolicy::Random, 1);
        assert_eq!(a.num_pages(), 1);
        assert_eq!(a.len_bytes(), PS);
    }

    #[test]
    fn partial_page_rounds_up() {
        let a = AddressSpace::new(7, PS + 1, PS, PageAllocPolicy::Random, 1);
        assert_eq!(a.num_pages(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_translation_panics() {
        let a = AddressSpace::new(8, PS, PS, PageAllocPolicy::Random, 1);
        a.translate(2 * PS as u64);
    }

    #[test]
    fn random_frames_spread_over_page_sets() {
        // Sanity check of the binomial premise: with many pages, the number
        // landing in one of 64 groups is close to pages/64.
        let pages = 4096;
        let a = AddressSpace::new(9, pages * PS, PS, PageAllocPolicy::Random, 21);
        let groups = 64u64;
        let mut counts = vec![0usize; groups as usize];
        for v in 0..pages {
            counts[(a.frame_of(v) % groups) as usize] += 1;
        }
        let expected = pages / groups as usize;
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            min > expected / 2 && max < expected * 2,
            "min={min} max={max}"
        );
    }
}
