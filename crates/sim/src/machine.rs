//! The cycle engine: traversals over the simulated cache hierarchy.
//!
//! A [`Machine`] instantiates one [`SetAssocCache`] per sharing group of
//! every cache level of its [`MachineSpec`], plus a per-core stride
//! prefetcher and a per-bus serialization clock. It can run the
//! Saavedra–Smith style strided traversal that mcalibrator is built on —
//! on one core, or on several cores in lockstep so that shared caches see
//! interleaved access streams and evict each other's lines, exactly the
//! effect the shared-cache benchmark (paper Fig. 5) measures.
//!
//! # The fast path
//!
//! Every downstream consumer (zoo sweeps, the false-sharing stage,
//! `servet-tune`'s trace oracle) bottlenecks on `Machine::access`, so
//! its constants are hoisted at construction into `LevelParam`s (line
//! shifts, indexing flags, hit costs) and scalar fields (page shift/mask,
//! memory latency, coherence line shift): the per-access path does no
//! spec-struct chasing, no divisions, and no allocation (the coherence
//! invalidation set lands in a reused scratch vector).
//!
//! The lockstep drivers ([`Machine::traverse_shared`], [`Machine::run_traces`])
//! add a block-replay fast path: unfinished jobs sit in a binary heap
//! keyed by virtual clock, the earliest job is popped and its accesses
//! replayed as a *block* until its clock reaches the next-earliest
//! clock (`heap.peek()`), then it is pushed back. While the job is
//! strictly minimal the original one-access-per-selection `min_by` scan
//! would have picked it too — and the heap breaks ties toward the
//! smallest job index, exactly as `min_by` does — so the access
//! interleaving, and therefore every counter and every cycle count, is
//! bit-identical while the dispatch cost drops from O(jobs) per access
//! to O(log jobs) per block. A read that hits a cache level private to
//! the accessing core additionally skips the coherence directory — a
//! provable MESI no-op while at most one shared address space exists
//! (the skip proof is documented in `Machine::access`). The
//! pre-fast-path engine is retained as
//! [`crate::reference::ReferenceMachine`] and the differential suite
//! holds the two to bit-identical results.

use crate::cache::SetAssocCache;
use crate::coherence::{CoherenceEngine, CoherenceTraffic};
use crate::prefetch::StridePrefetcher;
use crate::spec::{CoreId, Indexing, MachineSpec};
use crate::vm::AddressSpace;

/// A benchmark array: a span of virtual memory in its own address space
/// (each benchmark process allocates its own array, as in the paper's MPI
/// implementation).
///
/// Arrays allocated with [`Machine::alloc_shared_array`] are *shared*:
/// several cores may access them concurrently and the MESI coherence
/// layer (when the machine has one) tracks their lines. Ordinary arrays
/// are private to one benchmark process and skip coherence bookkeeping
/// entirely, which keeps the pre-coherence stages bit-identical.
#[derive(Debug, Clone)]
pub struct SimArray {
    aspace: AddressSpace,
    len: usize,
    shared: bool,
}

impl SimArray {
    /// Internal constructor, shared with the reference engine.
    pub(crate) fn new_raw(aspace: AddressSpace, len: usize, shared: bool) -> Self {
        Self {
            aspace,
            len,
            shared,
        }
    }

    /// Array length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing address space.
    pub fn aspace(&self) -> &AddressSpace {
        &self.aspace
    }

    /// Whether the array participates in coherence tracking.
    pub fn is_shared(&self) -> bool {
        self.shared
    }
}

/// One traversal job for the lockstep engine.
#[derive(Debug, Clone, Copy)]
pub struct TraversalJob<'a> {
    /// Core executing the traversal.
    pub core: CoreId,
    /// Array being traversed.
    pub array: &'a SimArray,
    /// Stride in bytes between accesses.
    pub stride: usize,
}

/// One job of a shared-buffer lockstep traversal: `count` accesses per
/// pass starting at `offset`, `stride` bytes apart, reading or writing.
///
/// Unlike [`TraversalJob`], several [`SharedJob`]s typically target the
/// *same* [`SimArray`] — this is the engine under the false-sharing
/// sweep (two cores writing `offset` and `offset + stride` of one line)
/// and the cache-mediated communication model (§III-D on-chip pairs).
#[derive(Debug, Clone, Copy)]
pub struct SharedJob<'a> {
    /// Core executing the accesses.
    pub core: CoreId,
    /// Array being accessed (usually shared with other jobs).
    pub array: &'a SimArray,
    /// Byte offset of the first access.
    pub offset: usize,
    /// Stride in bytes between accesses.
    pub stride: usize,
    /// Accesses per pass.
    pub count: usize,
    /// Whether the accesses are stores.
    pub write: bool,
}

/// One job of a multi-core trace replay: `core` replaying an explicit
/// `(virtual address, is_write)` step sequence over `array`.
///
/// Where [`TraversalJob`]/[`SharedJob`] describe *strided* streams, a
/// `TraceJob` carries the exact access pattern of an arbitrary kernel —
/// the multi-threaded generalization of [`Machine::run_trace`], and the
/// evaluation engine under `servet-tune`'s simulator oracle (a blocked
/// matmul sliced across threads, with per-thread accumulator writes
/// whose spacing decides whether they false-share).
#[derive(Debug, Clone, Copy)]
pub struct TraceJob<'a> {
    /// Core executing the steps.
    pub core: CoreId,
    /// Array the addresses index into (shared arrays go through the
    /// coherence layer).
    pub array: &'a SimArray,
    /// The access sequence: `(vaddr, write)` per step.
    pub steps: &'a [(u64, bool)],
}

/// Upper bound on cache levels, so the per-access line-key buffer can
/// live on the stack (real hierarchies stop at 3).
const MAX_LEVELS: usize = 8;

/// Lockstep-scheduler heap entry. `BinaryHeap` is a max-heap, so the
/// ordering is inverted: "greater" means *scheduled sooner* — smaller
/// clock first, ties broken toward the smaller job index. That
/// tie-break reproduces exactly what the reference engine's
/// `(0..n).filter(unfinished).min_by(total_cmp)` selects (`min_by`
/// returns the **first** minimal element), so the heap-driven engine
/// replays accesses in the identical interleaving at O(log n) per block
/// instead of two O(n) scans per block.
#[derive(Debug, Clone, Copy)]
struct SchedEntry {
    clock: f64,
    idx: usize,
}

impl PartialEq for SchedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for SchedEntry {}
impl PartialOrd for SchedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SchedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .clock
            .total_cmp(&self.clock)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Per-cache-level constants hoisted out of the access loop.
#[derive(Debug, Clone, Copy)]
struct LevelParam {
    /// `log2(line_size)`.
    line_shift: u32,
    /// Whether the level is virtually indexed.
    virt: bool,
    /// Hit latency in cycles.
    hit_cycles: f64,
}

/// A simulated shared-memory machine.
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    /// `caches[level][group]`.
    caches: Vec<Vec<SetAssocCache>>,
    /// `group_of[level][core]` — index into `caches[level]`.
    group_of: Vec<Vec<usize>>,
    /// Hoisted per-level constants, same order as `caches`.
    levels: Box<[LevelParam]>,
    prefetchers: Vec<StridePrefetcher>,
    /// Per-core data TLBs (fully associative LRU over `(asid, vpage)`),
    /// when the spec declares one.
    tlbs: Vec<Option<SetAssocCache>>,
    /// Innermost memory resource index for each core, if any.
    bus_of: Vec<Option<usize>>,
    /// Cycles to move one last-level line across each core's innermost
    /// bus (0.0 for bus-less cores) — the division is paid once here,
    /// not per memory access.
    transfer_cycles: Vec<f64>,
    /// Cycle at which each memory resource becomes free.
    bus_free_at: Vec<f64>,
    /// MESI directory + snoop bus, when the spec enables coherence.
    coherence: Option<CoherenceEngine>,
    /// `solo[level][core]` — whether `core`'s sharing group at `level`
    /// is just itself (a private cache instance).
    solo: Vec<Box<[bool]>>,
    /// Whether any core has a TLB (skips the per-core Option load on
    /// TLB-less machines).
    has_tlb: bool,
    /// Shared arrays allocated over the machine's lifetime. While at
    /// most one shared address space exists, a read that hits a level
    /// private to the accessing core is provably a directory no-op (see
    /// [`Self::access`]) and the fast path skips the directory probe.
    /// A second shared aspace could alias the first's physical frames
    /// (frames are drawn per-aspace from one pool), which would break
    /// the residency ⇒ valid-bit invariant, so the skip is disabled
    /// forever once a second shared array exists.
    shared_aspaces: u64,
    /// Scratch for coherence invalidation sets (reused, never shrunk).
    inv_scratch: Vec<CoreId>,
    /// `log2(page_size)` — translation is a shift, not a division.
    page_shift: u32,
    /// `page_size - 1`.
    page_mask: u64,
    /// Memory latency in cycles.
    mem_latency: f64,
    /// First-level hit cost (1.0 when the spec has no caches).
    l1_hit_cycles: f64,
    /// Line shift of the coherence granularity (first cache level).
    coh_line_shift: u32,
    /// TLB miss penalty (0.0 without a TLB).
    tlb_miss_cycles: f64,
    next_asid: u64,
    seed: u64,
}

impl Machine {
    /// Build a machine from a validated spec. Panics on an invalid spec —
    /// specs are code, not user input.
    pub fn new(spec: MachineSpec) -> Self {
        Self::with_seed(spec, 0x5EED)
    }

    /// Build a machine with an explicit RNG seed for page allocation.
    pub fn with_seed(spec: MachineSpec, seed: u64) -> Self {
        spec.validate().expect("invalid machine spec");
        assert!(
            spec.page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            spec.caches.len() <= MAX_LEVELS,
            "at most {MAX_LEVELS} cache levels supported"
        );
        let mut caches = Vec::new();
        let mut group_of = Vec::new();
        for cl in &spec.caches {
            let instances: Vec<SetAssocCache> = cl
                .sharing
                .iter()
                .map(|_| SetAssocCache::with_geometry(cl.size, cl.line_size, cl.associativity))
                .collect();
            let mut map = vec![usize::MAX; spec.num_cores];
            for (gi, group) in cl.sharing.iter().enumerate() {
                for &c in group {
                    map[c] = gi;
                }
            }
            caches.push(instances);
            group_of.push(map);
        }
        let solo: Vec<Box<[bool]>> = spec
            .caches
            .iter()
            .map(|cl| {
                let mut s = vec![false; spec.num_cores].into_boxed_slice();
                for group in cl.sharing.iter().filter(|g| g.len() == 1) {
                    s[group[0]] = true;
                }
                s
            })
            .collect();
        let levels: Box<[LevelParam]> = spec
            .caches
            .iter()
            .map(|cl| LevelParam {
                line_shift: cl.line_size.trailing_zeros(),
                virt: matches!(cl.indexing, Indexing::Virtual),
                hit_cycles: cl.hit_cycles,
            })
            .collect();
        let prefetchers = (0..spec.num_cores)
            .map(|_| StridePrefetcher::new(spec.prefetch_max_stride))
            .collect();
        let tlbs = (0..spec.num_cores)
            .map(|_| spec.tlb.map(|t| SetAssocCache::new(1, t.entries)))
            .collect();
        let bus_of: Vec<Option<usize>> = (0..spec.num_cores)
            .map(|c| {
                spec.memory
                    .resources
                    .iter()
                    .position(|r| r.cores.contains(&c))
            })
            .collect();
        let bus_bytes_per_cycle: Vec<f64> = spec
            .memory
            .resources
            .iter()
            .map(|r| r.capacity_gbs / spec.clock_ghz)
            .collect();
        let last_line = spec.caches.last().map_or(64, |c| c.line_size) as f64;
        let transfer_cycles = bus_of
            .iter()
            .map(|b| b.map_or(0.0, |bus| last_line / bus_bytes_per_cycle[bus]))
            .collect();
        let bus_free_at = vec![0.0; spec.memory.resources.len()];
        let coherence = spec
            .coherence
            .map(|c| CoherenceEngine::new(c, spec.num_cores));
        let page_shift = spec.page_size.trailing_zeros();
        let page_mask = spec.page_size as u64 - 1;
        let mem_latency = spec.memory.latency_cycles;
        let l1_hit_cycles = spec.caches.first().map_or(1.0, |c| c.hit_cycles);
        let coh_line_shift = spec
            .caches
            .first()
            .map_or(6, |c| c.line_size.trailing_zeros());
        let tlb_miss_cycles = spec.tlb.map_or(0.0, |t| t.miss_cycles);
        let has_tlb = spec.tlb.is_some();
        Self {
            spec,
            caches,
            group_of,
            levels,
            prefetchers,
            tlbs,
            bus_of,
            transfer_cycles,
            bus_free_at,
            coherence,
            solo,
            has_tlb,
            shared_aspaces: 0,
            inv_scratch: Vec::with_capacity(64),
            page_shift,
            page_mask,
            mem_latency,
            l1_hit_cycles,
            coh_line_shift,
            tlb_miss_cycles,
            next_asid: 1,
            seed,
        }
    }

    /// The machine's specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Allocate a benchmark array using the machine's page policy.
    pub fn alloc_array(&mut self, len_bytes: usize) -> SimArray {
        let policy = self.spec.page_alloc;
        self.alloc_array_with_policy(len_bytes, policy)
    }

    /// Allocate a benchmark array with an explicit page policy (used by the
    /// page-coloring ablation).
    pub fn alloc_array_with_policy(
        &mut self,
        len_bytes: usize,
        policy: crate::vm::PageAllocPolicy,
    ) -> SimArray {
        let asid = self.next_asid;
        self.next_asid += 1;
        SimArray {
            aspace: AddressSpace::new(asid, len_bytes, self.spec.page_size, policy, self.seed),
            len: len_bytes,
            shared: false,
        }
    }

    /// Allocate a *shared* benchmark array: cores accessing it through
    /// [`Self::traverse_shared`] go through the MESI coherence layer
    /// (when the machine has one). One address space, so every core sees
    /// the same virtual addresses — the model of a threads-on-one-node
    /// probe rather than the paper's process-per-core MPI layout.
    pub fn alloc_shared_array(&mut self, len_bytes: usize) -> SimArray {
        let mut arr = self.alloc_array(len_bytes);
        arr.shared = true;
        self.shared_aspaces += 1;
        arr
    }

    /// Flush every cache, reset prefetchers and bus clocks. The
    /// coherence directory resets by epoch stamp (O(1)).
    pub fn reset(&mut self) {
        for level in &mut self.caches {
            for c in level {
                c.flush();
            }
        }
        for p in &mut self.prefetchers {
            p.reset();
        }
        for t in self.tlbs.iter_mut().flatten() {
            t.flush();
        }
        for b in &mut self.bus_free_at {
            *b = 0.0;
        }
        if let Some(engine) = &mut self.coherence {
            engine.reset();
        }
    }

    /// Snoop-bus traffic accumulated so far; `None` when the spec has no
    /// coherence layer.
    pub fn coherence_traffic(&self) -> Option<CoherenceTraffic> {
        self.coherence.as_ref().map(|e| e.traffic())
    }

    /// Return the accumulated traffic and zero the counters (directory
    /// state and the snoop clock are kept). `None` without coherence.
    pub fn take_coherence_traffic(&mut self) -> Option<CoherenceTraffic> {
        self.coherence.as_mut().map(|e| e.take_traffic())
    }

    /// Line key for a level: physical caches key on the physical line,
    /// virtual ones on `(asid, virtual line)`.
    #[inline(always)]
    fn level_key(lp: &LevelParam, asid_tag: u64, vaddr: u64, paddr: u64) -> u64 {
        if lp.virt {
            asid_tag | (vaddr >> lp.line_shift)
        } else {
            paddr >> lp.line_shift
        }
    }

    /// Perform one access on `core`, updating cache and coherence state;
    /// returns `(cycles, went_to_memory)`. Memory-bus serialization is
    /// handled by the caller, which owns the per-core clocks; snoop-bus
    /// serialization happens here, against `now` (the accessing core's
    /// virtual clock).
    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        array: &SimArray,
        vaddr: u64,
        write: bool,
        now: f64,
    ) -> (f64, bool) {
        let aspace = array.aspace();
        // Translation is a shift/mask: pages are power-of-two sized and
        // `frames[vpage] * page_size` has no low bits set.
        let vpage = (vaddr >> self.page_shift) as usize;
        let paddr = (aspace.frame_of(vpage) << self.page_shift) | (vaddr & self.page_mask);
        let asid_tag = aspace.asid() << 40;
        // Translation cost first: a TLB miss costs extra regardless of
        // where the data itself is found.
        let mut tlb_penalty = 0.0;
        if self.has_tlb {
            if let Some(tlb) = self.tlbs[core].as_mut() {
                let key = asid_tag | (vaddr >> self.page_shift);
                if !tlb.probe(key) {
                    tlb.fill(key);
                    tlb_penalty = self.tlb_miss_cycles;
                }
            }
        }
        let covered = self.prefetchers[core].access(vaddr);
        let nlev = self.levels.len();
        // Line keys per level, computed once: the probe loop, the
        // invalidation walk and the fill loop all reuse them.
        let mut keys = [0u64; MAX_LEVELS];
        for (li, lp) in self.levels.iter().enumerate() {
            keys[li] = Self::level_key(lp, asid_tag, vaddr, paddr);
        }
        let mut hit_level = nlev; // nlev = memory
        for (li, &key) in keys.iter().enumerate().take(nlev) {
            let g = self.group_of[li][core];
            if self.caches[li][g].probe(key) {
                hit_level = li;
                break;
            }
        }
        // Coherence, between probe and fill: the directory decides the
        // transaction cost and which remote copies die. Private arrays
        // skip this entirely (each benchmark process owns its pages), so
        // the pre-coherence stages time out bit-identically.
        let mut coh_extra = 0.0;
        let mut supplied_by_cache = false;
        // Read-hit directory skip: a read that hits a level *private* to
        // this core proves the core already holds a valid copy, so the
        // directory access would be a strict no-op (no state change, no
        // traffic, zero extra cycles — MESI reads of a held line are
        // silent). The proof needs line residency to imply the valid
        // bit, which holds while at most one shared address space
        // exists (see `shared_aspaces`): every invalidation then removes
        // exactly the victim's resident keys, so a stale resident copy
        // is impossible. The retained reference engine always probes its
        // directory and the differential suite holds the two engines to
        // identical traffic and cycles, skip included.
        let skip_directory =
            !write && hit_level < nlev && self.shared_aspaces <= 1 && self.solo[hit_level][core];
        if array.shared && !skip_directory {
            if let Some(engine) = self.coherence.as_mut() {
                let phys_line = paddr >> self.coh_line_shift;
                let res = engine.access_into(
                    core,
                    phys_line,
                    write,
                    hit_level < nlev,
                    now,
                    &mut self.inv_scratch,
                );
                coh_extra = res.extra_cycles;
                supplied_by_cache = res.supplied_by_cache;
                // Physically remove invalidated copies from every cache
                // instance the victims do not share with the writer. The
                // victims see the same address space (shared array), so
                // the writer's line keys are theirs too.
                for k in 0..self.inv_scratch.len() {
                    let victim = self.inv_scratch[k];
                    for (li, &key) in keys.iter().enumerate().take(nlev) {
                        let gv = self.group_of[li][victim];
                        if gv != self.group_of[li][core] {
                            self.caches[li][gv].invalidate(key);
                        }
                    }
                }
            }
        }
        // Fill the line into every level above the hit level. The probe
        // loop just missed these levels and invalidations only touched
        // *other* sharing groups, so the line is provably absent:
        // `fill` skips `insert`'s residency re-scan.
        for (li, &key) in keys.iter().enumerate().take(hit_level) {
            let g = self.group_of[li][core];
            self.caches[li][g].fill(key);
        }
        if hit_level == nlev {
            if covered || supplied_by_cache {
                // The line arrived without a memory access: prefetched,
                // or supplied cache-to-cache by the previous owner. The
                // demand access costs an L1 hit plus any coherence
                // transactions.
                (self.l1_hit_cycles + tlb_penalty + coh_extra, false)
            } else {
                (self.mem_latency + tlb_penalty + coh_extra, true)
            }
        } else {
            (
                self.levels[hit_level].hit_cycles + tlb_penalty + coh_extra,
                false,
            )
        }
    }

    /// Run `warmup` un-measured passes followed by `passes` measured passes
    /// of a strided traversal on a single core. Returns average cycles per
    /// access over the measured passes.
    ///
    /// This is the engine under the paper's Fig. 1 loop
    /// (`for j = 0; j < size; j += A[j]`): the simulator performs the same
    /// address sequence the real kernel would.
    pub fn traverse(
        &mut self,
        core: CoreId,
        array: &SimArray,
        stride: usize,
        warmup: usize,
        passes: usize,
    ) -> f64 {
        let results = self.traverse_concurrent(
            &[TraversalJob {
                core,
                array,
                stride,
            }],
            warmup,
            passes,
        );
        results[0]
    }

    /// Run several traversals concurrently in lockstep, one access at a time
    /// from whichever core's virtual clock is furthest behind. Shared caches
    /// see the interleaved stream; memory accesses serialize on each core's
    /// innermost bus. Returns average measured cycles per access, per job.
    pub fn traverse_concurrent(
        &mut self,
        jobs: &[TraversalJob<'_>],
        warmup: usize,
        passes: usize,
    ) -> Vec<f64> {
        let shared: Vec<SharedJob<'_>> = jobs
            .iter()
            .map(|j| {
                assert!(j.stride > 0, "stride must be positive");
                SharedJob {
                    core: j.core,
                    array: j.array,
                    offset: 0,
                    stride: j.stride,
                    count: j.array.len().div_ceil(j.stride).max(1),
                    write: false,
                }
            })
            .collect();
        self.traverse_shared(&shared, warmup, passes)
    }

    /// Run several access streams (reads and/or writes, typically over
    /// one shared array) concurrently in lockstep. The MESI layer tracks
    /// every access to a shared array: stores invalidate remote copies,
    /// ping-ponging lines pay snoop transactions, and the traffic shows
    /// up in [`Self::coherence_traffic`]. Returns average measured
    /// cycles per access, per job.
    pub fn traverse_shared(
        &mut self,
        jobs: &[SharedJob<'_>],
        warmup: usize,
        passes: usize,
    ) -> Vec<f64> {
        assert!(!jobs.is_empty());
        assert!(passes > 0, "need at least one measured pass");
        for j in jobs {
            assert!(j.stride > 0, "stride must be positive");
            assert!(j.count > 0, "need at least one access per pass");
            assert!(j.core < self.spec.num_cores, "core out of range");
            let span = j.offset + (j.count - 1) * j.stride;
            assert!(span < j.array.len().max(1), "job walks past its array");
        }
        let total: Vec<usize> = jobs.iter().map(|j| j.count * (warmup + passes)).collect();
        let warm: Vec<usize> = jobs.iter().map(|j| j.count * warmup).collect();

        let n = jobs.len();
        let mut clock = vec![0.0f64; n];
        let mut done = vec![0usize; n];
        let mut measure_start = vec![0.0f64; n];
        // Lockstep: always advance the most-behind unfinished job,
        // block-replaying it while it stays strictly most-behind. The
        // heap pops exactly the job the reference engine's linear
        // `min_by` scan would pick (see [`SchedEntry`]); peeking the
        // next entry gives the block's replay limit for free.
        let mut heap: std::collections::BinaryHeap<SchedEntry> =
            (0..n).map(|idx| SchedEntry { clock: 0.0, idx }).collect();
        while let Some(SchedEntry { idx: i, .. }) = heap.pop() {
            let limit = heap.peek().map_or(f64::INFINITY, |e| e.clock);
            let job = &jobs[i];
            let bus = self.bus_of[job.core];
            let transfer = self.transfer_cycles[job.core];
            let mut idx = done[i] % job.count;
            loop {
                let vaddr = (job.offset + idx * job.stride) as u64;
                let (cost, mem) = self.access(job.core, job.array, vaddr, job.write, clock[i]);
                if mem {
                    if let Some(bus) = bus {
                        let start = clock[i].max(self.bus_free_at[bus]);
                        self.bus_free_at[bus] = start + transfer;
                        clock[i] = start + transfer + cost;
                    } else {
                        clock[i] += cost;
                    }
                } else {
                    clock[i] += cost;
                }
                done[i] += 1;
                idx += 1;
                if idx == job.count {
                    idx = 0;
                }
                if done[i] == warm[i] {
                    measure_start[i] = clock[i];
                }
                if done[i] >= total[i] {
                    break;
                }
                if clock[i] >= limit {
                    heap.push(SchedEntry {
                        clock: clock[i],
                        idx: i,
                    });
                    break;
                }
            }
        }
        (0..n)
            .map(|i| {
                let measured = (total[i] - warm[i]) as f64;
                (clock[i] - measure_start[i]) / measured
            })
            .collect()
    }

    /// Replay an arbitrary virtual-address trace on one core and return
    /// the average cycles per access.
    ///
    /// This is the evaluation hook for autotuned kernels: a blocked matrix
    /// multiply, say, can generate its exact access pattern and measure
    /// how a tile size behaves on this machine's hierarchy.
    pub fn run_trace(&mut self, core: CoreId, array: &SimArray, addrs: &[u64]) -> f64 {
        assert!(!addrs.is_empty(), "empty trace");
        let mut clock = 0.0f64;
        let mut bus_free = self.bus_free_at.clone();
        let core_bus = self.bus_of[core];
        let transfer = self.transfer_cycles[core];
        for &vaddr in addrs {
            let (cost, mem) = self.access(core, array, vaddr, false, clock);
            if mem {
                if let Some(bus) = core_bus {
                    let start = clock.max(bus_free[bus]);
                    bus_free[bus] = start + transfer;
                    clock = start + transfer + cost;
                } else {
                    clock += cost;
                }
            } else {
                clock += cost;
            }
        }
        self.bus_free_at = bus_free;
        clock / addrs.len() as f64
    }

    /// Replay several explicit traces concurrently in lockstep, one
    /// access at a time from whichever core's virtual clock is furthest
    /// behind — the multi-core generalization of [`Self::run_trace`].
    /// Shared caches see the interleaved streams, stores to shared
    /// arrays go through the MESI layer, and memory accesses serialize
    /// on each core's innermost bus. Returns the **total** cycles each
    /// job took (its finish time on its own virtual clock); the longest
    /// entry is the kernel's makespan.
    pub fn run_traces(&mut self, jobs: &[TraceJob<'_>]) -> Vec<f64> {
        assert!(!jobs.is_empty());
        for j in jobs {
            assert!(!j.steps.is_empty(), "empty trace");
            assert!(j.core < self.spec.num_cores, "core out of range");
        }
        let n = jobs.len();
        let total: Vec<usize> = jobs.iter().map(|j| j.steps.len()).collect();
        let mut clock = vec![0.0f64; n];
        let mut done = vec![0usize; n];
        // Same heap-driven lockstep as [`Self::traverse_shared`]: pop
        // order is bit-identical to the reference engine's linear scan.
        let mut heap: std::collections::BinaryHeap<SchedEntry> =
            (0..n).map(|idx| SchedEntry { clock: 0.0, idx }).collect();
        while let Some(SchedEntry { idx: i, .. }) = heap.pop() {
            let limit = heap.peek().map_or(f64::INFINITY, |e| e.clock);
            let job = &jobs[i];
            let bus = self.bus_of[job.core];
            let transfer = self.transfer_cycles[job.core];
            loop {
                let (vaddr, write) = job.steps[done[i]];
                let (cost, mem) = self.access(job.core, job.array, vaddr, write, clock[i]);
                if mem {
                    if let Some(bus) = bus {
                        let start = clock[i].max(self.bus_free_at[bus]);
                        self.bus_free_at[bus] = start + transfer;
                        clock[i] = start + transfer + cost;
                    } else {
                        clock[i] += cost;
                    }
                } else {
                    clock[i] += cost;
                }
                done[i] += 1;
                if done[i] >= total[i] {
                    break;
                }
                if clock[i] >= limit {
                    heap.push(SchedEntry {
                        clock: clock[i],
                        idx: i,
                    });
                    break;
                }
            }
        }
        clock
    }

    /// Convenience: hit/miss statistics of the cache instance serving
    /// `core` at `level` (1-based).
    pub fn cache_stats(&self, level: u8, core: CoreId) -> Option<(u64, u64)> {
        let li = self.spec.caches.iter().position(|c| c.level == level)?;
        let g = self.group_of[li][core];
        Some(self.caches[li][g].stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::vm::PageAllocPolicy;
    use crate::KB;

    /// Traversal cost of an array that fits L1 is the L1 hit cost.
    #[test]
    fn l1_resident_array_hits() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_array(4 * KB);
        let cycles = m.traverse(0, &arr, KB, 1, 3);
        assert!((cycles - 2.0).abs() < 1e-9, "cycles = {cycles}");
    }

    /// An array larger than L1 but within L2 costs the L2 hit time.
    #[test]
    fn l2_resident_array_costs_l2() {
        let mut m = Machine::new(presets::tiny_smp());
        // 32 KB: beyond the 8 KB L1, well within the (physically indexed)
        // 64 KB L2 — use coloring so no page-set overflows.
        let arr = m.alloc_array_with_policy(32 * KB, PageAllocPolicy::Colored);
        let cycles = m.traverse(0, &arr, KB, 1, 3);
        assert!((cycles - 10.0).abs() < 0.5, "cycles = {cycles}");
    }

    /// An array much larger than every cache costs about the memory latency.
    #[test]
    fn memory_resident_array_costs_memory() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_array(512 * KB);
        let cycles = m.traverse(0, &arr, KB, 1, 2);
        // latency 100 + fsb transfer 64 B at 3 GB/s / 1 GHz = ~21.3 cy.
        assert!(cycles > 100.0 && cycles < 140.0, "cycles = {cycles}");
    }

    /// The cycles-per-access curve is monotone through the hierarchy.
    #[test]
    fn cost_rises_with_array_size() {
        let mut m = Machine::new(presets::tiny_smp());
        let mut last = 0.0;
        for size in [4 * KB, 16 * KB, 48 * KB, 256 * KB] {
            let arr = m.alloc_array(size);
            m.reset();
            let c = m.traverse(0, &arr, KB, 1, 2);
            assert!(c >= last - 0.5, "cost not monotone at {size}: {c} < {last}");
            last = c;
        }
    }

    /// Deterministic: same seed, same measurements.
    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut m = Machine::with_seed(presets::tiny_smp(), seed);
            let arr = m.alloc_array(128 * KB);
            m.traverse(0, &arr, KB, 1, 2)
        };
        assert_eq!(run(1), run(1));
    }

    /// Two cores thrashing a shared L2 see a large slowdown; private-L2
    /// cores do not — the Fig. 5 signal.
    #[test]
    fn shared_l2_pair_thrashes() {
        let spec = presets::tiny_shared_l2(); // 128 KB L2 shared by {0,1},{2,3}
        let mut m = Machine::new(spec);
        let size = 2 * 128 * KB / 3;
        let a = m.alloc_array(size);
        let b = m.alloc_array(size);
        m.reset();
        let refc = m.traverse(0, &a, KB, 1, 2);
        m.reset();
        let pair = m.traverse_concurrent(
            &[
                TraversalJob {
                    core: 0,
                    array: &a,
                    stride: KB,
                },
                TraversalJob {
                    core: 1,
                    array: &b,
                    stride: KB,
                },
            ],
            1,
            2,
        );
        let ratio = pair[0] / refc;
        assert!(ratio > 2.0, "sharing ratio = {ratio}");

        m.reset();
        let apart = m.traverse_concurrent(
            &[
                TraversalJob {
                    core: 0,
                    array: &a,
                    stride: KB,
                },
                TraversalJob {
                    core: 2,
                    array: &b,
                    stride: KB,
                },
            ],
            1,
            2,
        );
        let ratio = apart[0] / refc;
        assert!(ratio < 1.5, "non-sharing ratio = {ratio}");
    }

    /// Small-stride traversal is hidden by the prefetcher: this is why
    /// mcalibrator strides by 1 KB (§III-A).
    #[test]
    fn prefetcher_hides_small_strides() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_array(256 * KB);
        m.reset();
        let seq = m.traverse(0, &arr, 64, 1, 1);
        m.reset();
        let strided = m.traverse(0, &arr, KB, 1, 1);
        assert!(
            seq < strided / 4.0,
            "prefetched sequential {seq} should be far below strided {strided}"
        );
    }

    /// Concurrent memory streams serialize on the shared bus. With one
    /// outstanding access per core, queuing only appears when the line
    /// transfer time rivals the memory latency, so this test narrows the
    /// bus until it must.
    #[test]
    fn bus_serializes_memory_streams() {
        let mut spec = presets::tiny_smp();
        // 0.2 GB/s at 1 GHz -> 320 cycles per 64 B line, >> 100 cy latency.
        spec.memory.resources[0].capacity_gbs = 0.2;
        let mut m = Machine::new(spec);
        let size = 512 * KB;
        let a = m.alloc_array(size);
        let b = m.alloc_array(size);
        m.reset();
        let solo = m.traverse(0, &a, KB, 1, 1);
        m.reset();
        let both = m.traverse_concurrent(
            &[
                TraversalJob {
                    core: 0,
                    array: &a,
                    stride: KB,
                },
                TraversalJob {
                    core: 1,
                    array: &b,
                    stride: KB,
                },
            ],
            1,
            1,
        );
        assert!(
            both[0] > solo * 1.3,
            "no bus contention visible: solo {solo}, both {}",
            both[0]
        );
    }

    /// Dunnington ground truth: core 0 + 12 share L2 (ratio > 2), core
    /// 0 + 1 do not. This is the heart of paper Fig. 8(a).
    #[test]
    fn dunnington_l2_sharing_visible() {
        let spec = presets::dunnington();
        let l2 = spec.cache_size(2).unwrap();
        let mut m = Machine::new(spec);
        let size = 2 * l2 / 3;
        let a = m.alloc_array(size);
        let b = m.alloc_array(size);
        m.reset();
        let refc = m.traverse(0, &a, KB, 1, 2);
        m.reset();
        let sharing = m.traverse_concurrent(
            &[
                TraversalJob {
                    core: 0,
                    array: &a,
                    stride: KB,
                },
                TraversalJob {
                    core: 12,
                    array: &b,
                    stride: KB,
                },
            ],
            1,
            2,
        );
        m.reset();
        let apart = m.traverse_concurrent(
            &[
                TraversalJob {
                    core: 0,
                    array: &a,
                    stride: KB,
                },
                TraversalJob {
                    core: 1,
                    array: &b,
                    stride: KB,
                },
            ],
            1,
            2,
        );
        let r_share = sharing[0] / refc;
        let r_apart = apart[0] / refc;
        assert!(r_share > 2.0, "0-12 ratio = {r_share}");
        assert!(r_apart < 2.0, "0-1 ratio = {r_apart}");
    }

    /// A TLB-equipped machine charges misses once the page working set
    /// exceeds the entry count.
    #[test]
    fn tlb_misses_appear_beyond_capacity() {
        let spec = presets::tiny_with_tlb(); // 64 entries, 25 cy, 1 KB pages
        let mut m = Machine::new(spec);
        // 32 pages: fits the TLB -> steady state has no penalty.
        let small = m.alloc_array(32 * KB);
        m.reset();
        let c_small = m.traverse(0, &small, KB, 1, 2);
        // 128 pages: cyclic LRU thrashes all 64 entries -> +25 cy each.
        let large = m.alloc_array(128 * KB);
        m.reset();
        let c_large = m.traverse(0, &large, KB, 1, 2);
        // Compare with the TLB-free machine at the same sizes.
        let mut base = Machine::new(presets::tiny_smp());
        let small0 = base.alloc_array(32 * KB);
        base.reset();
        let b_small = base.traverse(0, &small0, KB, 1, 2);
        let large0 = base.alloc_array(128 * KB);
        base.reset();
        let b_large = base.traverse(0, &large0, KB, 1, 2);
        assert!((c_small - b_small).abs() < 1.0, "{c_small} vs {b_small}");
        assert!(
            c_large > b_large + 20.0,
            "TLB penalty missing: {c_large} vs {b_large}"
        );
    }

    /// Two cores writing the *same* line of a shared array ping-pong it:
    /// every store invalidates the other core's Modified copy. Writes a
    /// full line apart see none of that.
    #[test]
    fn false_sharing_ping_pong_costs_and_counts() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_shared_array(4 * KB);
        let line = m.spec().caches[0].line_size;
        let job = |core, offset| SharedJob {
            core,
            array: &arr,
            offset,
            stride: line,
            count: 8,
            write: true,
        };
        m.reset();
        let same_line = m.traverse_shared(&[job(0, 0), job(1, 8)], 1, 4);
        let t_shared = m.coherence_traffic().unwrap();
        m.reset();
        let padded = m.traverse_shared(&[job(0, 0), job(1, 8 * line)], 1, 4);
        let t_padded = m.coherence_traffic().unwrap();
        assert!(
            same_line[0] > 4.0 * padded[0],
            "no ping-pong visible: {same_line:?} vs {padded:?}"
        );
        assert!(t_shared.invalidations > 0, "{t_shared:?}");
        assert!(t_shared.writebacks > 0, "{t_shared:?}");
        assert!(t_shared.coherence_misses > 0, "{t_shared:?}");
        // Disjoint lines: each core keeps its lines Modified after the
        // first exchange-free claim.
        assert_eq!(t_padded.coherence_misses, 0, "{t_padded:?}");
    }

    /// A handoff (one core writes, the other reads the same lines) is
    /// served cache-to-cache: interventions, not memory traffic.
    #[test]
    fn producer_consumer_handoff_uses_interventions() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_shared_array(4 * KB);
        let line = m.spec().caches[0].line_size;
        m.reset();
        m.traverse_shared(
            &[
                SharedJob {
                    core: 0,
                    array: &arr,
                    offset: 0,
                    stride: line,
                    count: 16,
                    write: true,
                },
                SharedJob {
                    core: 1,
                    array: &arr,
                    offset: 0,
                    stride: line,
                    count: 16,
                    write: false,
                },
            ],
            1,
            4,
        );
        let t = m.coherence_traffic().unwrap();
        assert!(t.interventions > 0, "{t:?}");
        assert!(t.writebacks > 0, "{t:?}");
    }

    /// Private arrays never touch the directory: read-only suite stages
    /// are bit-identical with and without the coherence layer.
    #[test]
    fn coherence_layer_leaves_private_traversals_untouched() {
        let with = presets::tiny_smp();
        let mut without = presets::tiny_smp();
        without.coherence = None;
        let run = |spec: MachineSpec| {
            let mut m = Machine::with_seed(spec, 77);
            let a = m.alloc_array(96 * KB);
            let b = m.alloc_array(96 * KB);
            m.reset();
            m.traverse_concurrent(
                &[
                    TraversalJob {
                        core: 0,
                        array: &a,
                        stride: KB,
                    },
                    TraversalJob {
                        core: 1,
                        array: &b,
                        stride: KB,
                    },
                ],
                1,
                2,
            )
        };
        assert_eq!(run(with.clone()), run(without));
        let mut m = Machine::new(with);
        let a = m.alloc_array(32 * KB);
        m.traverse(0, &a, KB, 1, 2);
        assert_eq!(
            m.coherence_traffic().unwrap(),
            crate::coherence::CoherenceTraffic::default()
        );
    }

    /// Traffic counters are a pure function of the access sequence:
    /// bit-identical across fresh runs with the same seed.
    #[test]
    fn coherence_traffic_is_deterministic() {
        let run = || {
            let mut m = Machine::with_seed(presets::tiny_shared_l2(), 9);
            let arr = m.alloc_shared_array(8 * KB);
            m.reset();
            let cycles = m.traverse_shared(
                &[
                    SharedJob {
                        core: 0,
                        array: &arr,
                        offset: 0,
                        stride: 64,
                        count: 32,
                        write: true,
                    },
                    SharedJob {
                        core: 2,
                        array: &arr,
                        offset: 16,
                        stride: 64,
                        count: 32,
                        write: true,
                    },
                ],
                1,
                3,
            );
            (cycles, m.coherence_traffic().unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn take_coherence_traffic_drains() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_shared_array(KB);
        m.traverse_shared(
            &[
                SharedJob {
                    core: 0,
                    array: &arr,
                    offset: 0,
                    stride: 64,
                    count: 4,
                    write: true,
                },
                SharedJob {
                    core: 1,
                    array: &arr,
                    offset: 0,
                    stride: 64,
                    count: 4,
                    write: true,
                },
            ],
            0,
            2,
        );
        let t = m.take_coherence_traffic().unwrap();
        assert!(t.transactions() > 0);
        assert_eq!(
            m.coherence_traffic().unwrap(),
            crate::coherence::CoherenceTraffic::default()
        );
    }

    /// run_traces on one core agrees with run_trace on the same
    /// read-only sequence (total = avg × len), and a two-core replay of
    /// a ping-ponging shared line costs more than disjoint-line writes.
    #[test]
    fn run_traces_matches_run_trace_and_sees_coherence() {
        let mut m = Machine::with_seed(presets::tiny_smp(), 11);
        let arr = m.alloc_array(64 * KB);
        let addrs: Vec<u64> = (0..256u64).map(|i| (i * 1031) % (64 * KB as u64)).collect();
        m.reset();
        let avg = m.run_trace(0, &arr, &addrs);
        let steps: Vec<(u64, bool)> = addrs.iter().map(|&a| (a, false)).collect();
        let mut m2 = Machine::with_seed(presets::tiny_smp(), 11);
        let arr2 = m2.alloc_array(64 * KB);
        m2.reset();
        let total = m2.run_traces(&[TraceJob {
            core: 0,
            array: &arr2,
            steps: &steps,
        }]);
        assert!(
            (total[0] - avg * addrs.len() as f64).abs() < 1e-6,
            "{} vs {}",
            total[0],
            avg * addrs.len() as f64
        );

        // Two writers on one line ping-pong; a line apart they do not.
        let mut m = Machine::new(presets::tiny_smp());
        let shared = m.alloc_shared_array(4 * KB);
        let line = m.spec().caches[0].line_size as u64;
        let near: Vec<Vec<(u64, bool)>> = (0..2)
            .map(|c| (0..32).map(|_| (c * 8, true)).collect())
            .collect();
        let far: Vec<Vec<(u64, bool)>> = (0..2)
            .map(|c| (0..32).map(|_| (c * 8 * line, true)).collect())
            .collect();
        m.reset();
        let t_near = m.run_traces(&[
            TraceJob {
                core: 0,
                array: &shared,
                steps: &near[0],
            },
            TraceJob {
                core: 1,
                array: &shared,
                steps: &near[1],
            },
        ]);
        m.reset();
        let t_far = m.run_traces(&[
            TraceJob {
                core: 0,
                array: &shared,
                steps: &far[0],
            },
            TraceJob {
                core: 1,
                array: &shared,
                steps: &far[1],
            },
        ]);
        let near_max = t_near.iter().cloned().fold(0.0, f64::max);
        let far_max = t_far.iter().cloned().fold(0.0, f64::max);
        assert!(
            near_max > 2.0 * far_max,
            "ping-pong {near_max} vs padded {far_max}"
        );
    }

    #[test]
    fn cache_stats_accessible() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_array(4 * KB);
        m.traverse(0, &arr, KB, 0, 1);
        let (h, mi) = m.cache_stats(1, 0).unwrap();
        assert!(h + mi > 0);
        assert!(m.cache_stats(9, 0).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_stride_panics() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_array(4 * KB);
        m.traverse(0, &arr, 0, 0, 1);
    }

    #[test]
    fn array_accessors() {
        let mut m = Machine::new(presets::tiny_smp());
        let arr = m.alloc_array(8 * KB);
        assert_eq!(arr.len(), 8 * KB);
        assert!(!arr.is_empty());
        assert_eq!(arr.aspace().num_pages(), 8 * KB / m.spec().page_size);
    }
}
