//! Hardware stride prefetcher model.
//!
//! §III-A of the paper chooses a 1 KB traversal stride precisely because
//! "current prefetchers work with strides up to 256 or 512 bytes": a smaller
//! stride would let the prefetcher hide the very misses mcalibrator needs to
//! observe. This model reproduces that hazard so the ablation benchmark can
//! demonstrate why the 1 KB choice matters.

/// A per-core stride prefetcher.
///
/// After two consecutive accesses with the same non-zero stride whose
/// magnitude is within `max_stride` bytes, the prefetcher is *trained* and
/// the next access at that stride is considered covered (its miss latency is
/// hidden). Crossing to an unrelated address resets training.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    max_stride: i64,
    last_addr: Option<u64>,
    last_stride: i64,
    trained: bool,
}

impl StridePrefetcher {
    /// Create a prefetcher covering strides up to `max_stride` bytes.
    /// `max_stride == 0` disables prefetching entirely.
    pub fn new(max_stride: usize) -> Self {
        Self {
            max_stride: max_stride as i64,
            last_addr: None,
            last_stride: 0,
            trained: false,
        }
    }

    /// Record an access to `vaddr` and report whether the prefetcher had
    /// already covered it (i.e. its miss cost is hidden).
    pub fn access(&mut self, vaddr: u64) -> bool {
        let covered = self.trained;
        let stride = match self.last_addr {
            Some(prev) => vaddr as i64 - prev as i64,
            None => 0,
        };
        let in_range = stride != 0 && self.max_stride > 0 && stride.abs() <= self.max_stride;
        // Train when the current stride repeats the previous one.
        self.trained = in_range && stride == self.last_stride;
        self.last_stride = if in_range { stride } else { 0 };
        self.last_addr = Some(vaddr);
        covered && in_range && stride == self.last_stride
    }

    /// Forget all training (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        self.last_addr = None;
        self.last_stride = 0;
        self.trained = false;
    }

    /// The largest stride this prefetcher covers, in bytes.
    pub fn max_stride(&self) -> usize {
        self.max_stride as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_stride_stream_gets_covered() {
        let mut p = StridePrefetcher::new(512);
        let mut covered = 0;
        for i in 0..16u64 {
            if p.access(i * 64) {
                covered += 1;
            }
        }
        // First two accesses train; the rest are covered.
        assert!(covered >= 13, "covered = {covered}");
    }

    #[test]
    fn stride_1kb_never_covered() {
        let mut p = StridePrefetcher::new(512);
        for i in 0..32u64 {
            assert!(
                !p.access(i * 1024),
                "1 KB stride must defeat the prefetcher"
            );
        }
    }

    #[test]
    fn boundary_stride_is_covered() {
        let mut p = StridePrefetcher::new(512);
        let mut any = false;
        for i in 0..8u64 {
            any |= p.access(i * 512);
        }
        assert!(any);
    }

    #[test]
    fn disabled_prefetcher_covers_nothing() {
        let mut p = StridePrefetcher::new(0);
        for i in 0..8u64 {
            assert!(!p.access(i * 64));
        }
    }

    #[test]
    fn irregular_pattern_breaks_training() {
        let mut p = StridePrefetcher::new(512);
        p.access(0);
        p.access(64);
        p.access(128); // trained and covered from here
        assert!(p.access(192));
        assert!(!p.access(10_000)); // jump resets
        assert!(!p.access(10_064)); // retraining
        assert!(!p.access(10_128)); // second same-stride access trains
        assert!(p.access(10_192)); // covered again
    }

    #[test]
    fn backward_stride_also_covered() {
        let mut p = StridePrefetcher::new(512);
        let mut covered = 0;
        for i in (0..16u64).rev() {
            if p.access(i * 64) {
                covered += 1;
            }
        }
        assert!(covered >= 13);
    }

    #[test]
    fn reset_forgets_training() {
        let mut p = StridePrefetcher::new(512);
        for i in 0..4u64 {
            p.access(i * 64);
        }
        p.reset();
        assert!(!p.access(256));
        assert!(!p.access(320));
        assert_eq!(p.max_stride(), 512);
    }
}
