//! # servet-sim
//!
//! Machine simulator substrate for the Servet reproduction.
//!
//! The paper ran its benchmarks on real multicore clusters (Dunnington,
//! Finis Terrae, Dempsey, Athlon). This crate builds the equivalent machines
//! in software so the *same benchmark algorithms* can observe the same
//! phenomena deterministically:
//!
//! * [`spec`] — machine descriptions: cache levels with explicit sharing
//!   groups, physical/virtual indexing, memory resources (buses, cells,
//!   controllers) with capacities.
//! * [`presets`] — the paper's four evaluation machines plus small synthetic
//!   machines for fast tests.
//! * [`cache`] — set-associative LRU caches.
//! * [`coherence`] — per-line MESI state machines and a snoop-bus
//!   transaction model layered over the caches: false sharing,
//!   invalidation/writeback/intervention traffic, coherence-miss vs
//!   capacity-miss classification.
//! * [`vm`] — per-process address spaces with random (Linux-like), colored,
//!   or contiguous page-frame allocation. Random allocation is what makes
//!   physically indexed caches *probabilistic*, the effect the paper's
//!   Fig. 3 algorithm exploits.
//! * [`prefetch`] — a stride prefetcher covering strides up to 512 B, which
//!   is why mcalibrator strides by 1 KB.
//! * [`machine`] — the cycle engine: single-core traversals and lockstep
//!   multi-core traversals over the shared cache state, with memory-bus
//!   serialization. Rewritten for throughput (packed LRU ways, hashed
//!   MESI directory, block-replay lockstep); results are bit-identical
//!   to the retained pre-rewrite engine.
//! * [`mod@reference`] — that retained engine, [`reference::ReferenceMachine`]:
//!   the original data structures and access loop, kept as the oracle for
//!   differential tests and the `BENCH_sim` before/after comparison.
//! * [`membw`] — max-min fair streaming-bandwidth model of the memory
//!   system, used by the STREAM-like memory overhead benchmark.

pub mod cache;
pub mod coherence;
pub mod machine;
pub mod membw;
pub mod perturb;
pub mod prefetch;
pub mod presets;
pub mod reference;
pub mod spec;
pub mod vm;

pub use cache::SetAssocCache;
pub use coherence::{CoherenceEngine, CoherenceSpec, CoherenceTraffic, MesiState};
pub use machine::{Machine, SimArray, TraceJob};
pub use membw::{maxmin_fair, MemorySystem};
pub use perturb::{perturb, PerturbConfig};
pub use prefetch::StridePrefetcher;
pub use reference::ReferenceMachine;
pub use spec::{CacheLevelSpec, CoreId, Indexing, MachineSpec, MemResource, MemorySpec};
pub use vm::{AddressSpace, PageAllocPolicy};

/// Kibibyte.
pub const KB: usize = 1024;
/// Mebibyte.
pub const MB: usize = 1024 * 1024;
