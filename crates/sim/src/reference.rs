//! The retained pre-fast-path simulator, for differential testing and
//! the `BENCH_sim` before/after comparison.
//!
//! [`ReferenceMachine`] is a faithful copy of the cycle engine as it
//! stood before the throughput rewrite: per-access division-based
//! address translation, per-level spec lookups (line shifts recomputed
//! with `trailing_zeros` on every access), [`ReferenceCache`]'s
//! `Vec<Vec<u64>>` sets with `remove`/`insert` LRU shifting,
//! [`ReferenceEngine`]'s `BTreeMap` directory with a per-access
//! invalidation `Vec`, and the one-access-per-selection lockstep loops.
//! It is deliberately *not* shared code with [`crate::machine::Machine`]
//! — the point is that the two implementations agree bit-for-bit while
//! taking different paths, so the differential suite
//! (`tests/differential.rs`) has real teeth and the throughput bench
//! compares the genuine old cost model, not a strawman.
//!
//! Everything here mirrors the public API of [`crate::machine::Machine`]
//! so a test or bench can drive either engine with the same harness.

// Frozen pre-rewrite code: style lints stay silenced rather than
// "fixed", because any edit here weakens the differential baseline.
#![allow(clippy::unnecessary_unwrap, clippy::while_let_loop)]

use crate::cache::reference::ReferenceCache;
use crate::coherence::reference::ReferenceEngine;
use crate::coherence::CoherenceTraffic;
use crate::machine::{SharedJob, SimArray, TraceJob, TraversalJob};
use crate::prefetch::StridePrefetcher;
use crate::spec::{CoreId, Indexing, MachineSpec};
use crate::vm::AddressSpace;

/// The pre-rewrite simulated machine: same observable behavior as
/// [`crate::machine::Machine`], original data structures and hot path.
#[derive(Debug, Clone)]
pub struct ReferenceMachine {
    spec: MachineSpec,
    /// `caches[level][group]`.
    caches: Vec<Vec<ReferenceCache>>,
    /// `group_of[level][core]` — index into `caches[level]`.
    group_of: Vec<Vec<usize>>,
    prefetchers: Vec<StridePrefetcher>,
    tlbs: Vec<Option<ReferenceCache>>,
    bus_of: Vec<Option<usize>>,
    bus_free_at: Vec<f64>,
    bus_bytes_per_cycle: Vec<f64>,
    coherence: Option<ReferenceEngine>,
    next_asid: u64,
    seed: u64,
}

impl ReferenceMachine {
    /// Build a reference machine from a validated spec.
    pub fn new(spec: MachineSpec) -> Self {
        Self::with_seed(spec, 0x5EED)
    }

    /// Build a reference machine with an explicit page-allocation seed.
    /// Seeds line up with [`crate::machine::Machine::with_seed`], so the
    /// two engines allocate identical page mappings.
    pub fn with_seed(spec: MachineSpec, seed: u64) -> Self {
        spec.validate().expect("invalid machine spec");
        let mut caches = Vec::new();
        let mut group_of = Vec::new();
        for cl in &spec.caches {
            let instances: Vec<ReferenceCache> = cl
                .sharing
                .iter()
                .map(|_| ReferenceCache::with_geometry(cl.size, cl.line_size, cl.associativity))
                .collect();
            let mut map = vec![usize::MAX; spec.num_cores];
            for (gi, group) in cl.sharing.iter().enumerate() {
                for &c in group {
                    map[c] = gi;
                }
            }
            caches.push(instances);
            group_of.push(map);
        }
        let prefetchers = (0..spec.num_cores)
            .map(|_| StridePrefetcher::new(spec.prefetch_max_stride))
            .collect();
        let tlbs = (0..spec.num_cores)
            .map(|_| spec.tlb.map(|t| ReferenceCache::new(1, t.entries)))
            .collect();
        let bus_of = (0..spec.num_cores)
            .map(|c| {
                spec.memory
                    .resources
                    .iter()
                    .position(|r| r.cores.contains(&c))
            })
            .collect();
        let bus_bytes_per_cycle = spec
            .memory
            .resources
            .iter()
            .map(|r| r.capacity_gbs / spec.clock_ghz)
            .collect();
        let bus_free_at = vec![0.0; spec.memory.resources.len()];
        let coherence = spec
            .coherence
            .map(|c| ReferenceEngine::new(c, spec.num_cores));
        Self {
            spec,
            caches,
            group_of,
            prefetchers,
            tlbs,
            bus_of,
            bus_free_at,
            bus_bytes_per_cycle,
            coherence,
            next_asid: 1,
            seed,
        }
    }

    /// The machine's specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Allocate a benchmark array using the machine's page policy.
    pub fn alloc_array(&mut self, len_bytes: usize) -> SimArray {
        let policy = self.spec.page_alloc;
        self.alloc_array_with_policy(len_bytes, policy)
    }

    /// Allocate a benchmark array with an explicit page policy.
    pub fn alloc_array_with_policy(
        &mut self,
        len_bytes: usize,
        policy: crate::vm::PageAllocPolicy,
    ) -> SimArray {
        let asid = self.next_asid;
        self.next_asid += 1;
        SimArray::new_raw(
            AddressSpace::new(asid, len_bytes, self.spec.page_size, policy, self.seed),
            len_bytes,
            false,
        )
    }

    /// Allocate a *shared* benchmark array tracked by the MESI layer.
    pub fn alloc_shared_array(&mut self, len_bytes: usize) -> SimArray {
        let asid = self.next_asid;
        self.next_asid += 1;
        SimArray::new_raw(
            AddressSpace::new(
                asid,
                len_bytes,
                self.spec.page_size,
                self.spec.page_alloc,
                self.seed,
            ),
            len_bytes,
            true,
        )
    }

    /// Flush every cache, reset prefetchers and bus clocks.
    pub fn reset(&mut self) {
        for level in &mut self.caches {
            for c in level {
                c.flush();
            }
        }
        for p in &mut self.prefetchers {
            p.reset();
        }
        for t in self.tlbs.iter_mut().flatten() {
            t.flush();
        }
        for b in &mut self.bus_free_at {
            *b = 0.0;
        }
        if let Some(engine) = &mut self.coherence {
            engine.reset();
        }
    }

    /// Snoop-bus traffic accumulated so far, if coherence is modeled.
    pub fn coherence_traffic(&self) -> Option<CoherenceTraffic> {
        self.coherence.as_ref().map(|e| e.traffic())
    }

    /// Return accumulated traffic and zero the counters.
    pub fn take_coherence_traffic(&mut self) -> Option<CoherenceTraffic> {
        self.coherence.as_mut().map(|e| e.take_traffic())
    }

    /// Line key for `level`, recomputing the shift from the spec each
    /// call (the original cost model).
    #[inline]
    fn line_key(&self, level: usize, aspace: &AddressSpace, vaddr: u64, paddr: u64) -> u64 {
        let cl = &self.spec.caches[level];
        let line_shift = cl.line_size.trailing_zeros();
        match cl.indexing {
            Indexing::Physical => paddr >> line_shift,
            Indexing::Virtual => (aspace.asid() << 40) | (vaddr >> line_shift),
        }
    }

    /// One access: the original division-based, spec-chasing path.
    fn access(
        &mut self,
        core: CoreId,
        array: &SimArray,
        vaddr: u64,
        write: bool,
        now: f64,
    ) -> (f64, bool) {
        let aspace = array.aspace();
        let paddr = aspace.translate(vaddr);
        let mut tlb_penalty = 0.0;
        if let (Some(tlb), Some(spec)) = (self.tlbs[core].as_mut(), self.spec.tlb) {
            let key = (aspace.asid() << 40) | (vaddr / self.spec.page_size as u64);
            if !tlb.probe(key) {
                tlb.insert(key);
                tlb_penalty = spec.miss_cycles;
            }
        }
        let covered = self.prefetchers[core].access(vaddr);
        let nlev = self.spec.caches.len();
        let mut hit_level = nlev;
        for li in 0..nlev {
            let key = self.line_key(li, aspace, vaddr, paddr);
            let g = self.group_of[li][core];
            if self.caches[li][g].probe(key) {
                hit_level = li;
                break;
            }
        }
        let mut coh_extra = 0.0;
        let mut supplied_by_cache = false;
        if array.is_shared() && self.coherence.is_some() {
            let line_shift = self
                .spec
                .caches
                .first()
                .map_or(6, |c| c.line_size.trailing_zeros());
            let phys_line = paddr >> line_shift;
            let outcome = self.coherence.as_mut().expect("checked above").access(
                core,
                phys_line,
                write,
                hit_level < nlev,
                now,
            );
            coh_extra = outcome.extra_cycles;
            supplied_by_cache = outcome.supplied_by_cache;
            for &victim in &outcome.invalidate_cores {
                for li in 0..nlev {
                    let gv = self.group_of[li][victim];
                    if gv != self.group_of[li][core] {
                        let key = self.line_key(li, aspace, vaddr, paddr);
                        self.caches[li][gv].invalidate(key);
                    }
                }
            }
        }
        for li in 0..hit_level {
            let key = self.line_key(li, aspace, vaddr, paddr);
            let g = self.group_of[li][core];
            self.caches[li][g].insert(key);
        }
        if hit_level == nlev {
            if covered || supplied_by_cache {
                let l1 = self.spec.caches.first().map_or(1.0, |c| c.hit_cycles);
                (l1 + tlb_penalty + coh_extra, false)
            } else {
                (
                    self.spec.memory.latency_cycles + tlb_penalty + coh_extra,
                    true,
                )
            }
        } else {
            (
                self.spec.caches[hit_level].hit_cycles + tlb_penalty + coh_extra,
                false,
            )
        }
    }

    /// Cycles to move one last-level line across `core`'s bus.
    fn line_transfer_cycles(&self, core: CoreId) -> f64 {
        let Some(bus) = self.bus_of[core] else {
            return 0.0;
        };
        let line = self.spec.caches.last().map_or(64, |c| c.line_size) as f64;
        line / self.bus_bytes_per_cycle[bus]
    }

    /// Single-core strided traversal; see
    /// [`crate::machine::Machine::traverse`].
    pub fn traverse(
        &mut self,
        core: CoreId,
        array: &SimArray,
        stride: usize,
        warmup: usize,
        passes: usize,
    ) -> f64 {
        let results = self.traverse_concurrent(
            &[TraversalJob {
                core,
                array,
                stride,
            }],
            warmup,
            passes,
        );
        results[0]
    }

    /// Concurrent strided traversals; see
    /// [`crate::machine::Machine::traverse_concurrent`].
    pub fn traverse_concurrent(
        &mut self,
        jobs: &[TraversalJob<'_>],
        warmup: usize,
        passes: usize,
    ) -> Vec<f64> {
        let shared: Vec<SharedJob<'_>> = jobs
            .iter()
            .map(|j| {
                assert!(j.stride > 0, "stride must be positive");
                SharedJob {
                    core: j.core,
                    array: j.array,
                    offset: 0,
                    stride: j.stride,
                    count: j.array.len().div_ceil(j.stride).max(1),
                    write: false,
                }
            })
            .collect();
        self.traverse_shared(&shared, warmup, passes)
    }

    /// Lockstep shared-buffer traversal, one access per scheduler
    /// selection (the original loop); see
    /// [`crate::machine::Machine::traverse_shared`].
    pub fn traverse_shared(
        &mut self,
        jobs: &[SharedJob<'_>],
        warmup: usize,
        passes: usize,
    ) -> Vec<f64> {
        assert!(!jobs.is_empty());
        assert!(passes > 0, "need at least one measured pass");
        for j in jobs {
            assert!(j.stride > 0, "stride must be positive");
            assert!(j.count > 0, "need at least one access per pass");
            assert!(j.core < self.spec.num_cores, "core out of range");
            let span = j.offset + (j.count - 1) * j.stride;
            assert!(span < j.array.len().max(1), "job walks past its array");
        }
        let total: Vec<usize> = jobs.iter().map(|j| j.count * (warmup + passes)).collect();
        let warm: Vec<usize> = jobs.iter().map(|j| j.count * warmup).collect();

        let n = jobs.len();
        let mut clock = vec![0.0f64; n];
        let mut done = vec![0usize; n];
        let mut measure_start = vec![0.0f64; n];
        loop {
            let Some(i) = (0..n)
                .filter(|&i| done[i] < total[i])
                .min_by(|&a, &b| clock[a].total_cmp(&clock[b]))
            else {
                break;
            };
            let job = &jobs[i];
            let idx = done[i] % job.count;
            let vaddr = (job.offset + idx * job.stride) as u64;
            let (cost, mem) = self.access(job.core, job.array, vaddr, job.write, clock[i]);
            if mem {
                if let Some(bus) = self.bus_of[job.core] {
                    let transfer = self.line_transfer_cycles(job.core);
                    let start = clock[i].max(self.bus_free_at[bus]);
                    self.bus_free_at[bus] = start + transfer;
                    clock[i] = start + transfer + cost;
                } else {
                    clock[i] += cost;
                }
            } else {
                clock[i] += cost;
            }
            done[i] += 1;
            if done[i] == warm[i] {
                measure_start[i] = clock[i];
            }
        }
        (0..n)
            .map(|i| {
                let measured = (total[i] - warm[i]) as f64;
                (clock[i] - measure_start[i]) / measured
            })
            .collect()
    }

    /// Single-core trace replay; see
    /// [`crate::machine::Machine::run_trace`].
    pub fn run_trace(&mut self, core: CoreId, array: &SimArray, addrs: &[u64]) -> f64 {
        assert!(!addrs.is_empty(), "empty trace");
        let mut clock = 0.0f64;
        let mut bus_free = self.bus_free_at.clone();
        for &vaddr in addrs {
            let (cost, mem) = self.access(core, array, vaddr, false, clock);
            if mem {
                if let Some(bus) = self.bus_of[core] {
                    let transfer = self.line_transfer_cycles(core);
                    let start = clock.max(bus_free[bus]);
                    bus_free[bus] = start + transfer;
                    clock = start + transfer + cost;
                } else {
                    clock += cost;
                }
            } else {
                clock += cost;
            }
        }
        self.bus_free_at = bus_free;
        clock / addrs.len() as f64
    }

    /// Multi-core lockstep trace replay, one access per selection; see
    /// [`crate::machine::Machine::run_traces`].
    pub fn run_traces(&mut self, jobs: &[TraceJob<'_>]) -> Vec<f64> {
        assert!(!jobs.is_empty());
        for j in jobs {
            assert!(!j.steps.is_empty(), "empty trace");
            assert!(j.core < self.spec.num_cores, "core out of range");
        }
        let n = jobs.len();
        let mut clock = vec![0.0f64; n];
        let mut done = vec![0usize; n];
        loop {
            let Some(i) = (0..n)
                .filter(|&i| done[i] < jobs[i].steps.len())
                .min_by(|&a, &b| clock[a].total_cmp(&clock[b]))
            else {
                break;
            };
            let job = &jobs[i];
            let (vaddr, write) = job.steps[done[i]];
            let (cost, mem) = self.access(job.core, job.array, vaddr, write, clock[i]);
            if mem {
                if let Some(bus) = self.bus_of[job.core] {
                    let transfer = self.line_transfer_cycles(job.core);
                    let start = clock[i].max(self.bus_free_at[bus]);
                    self.bus_free_at[bus] = start + transfer;
                    clock[i] = start + transfer + cost;
                } else {
                    clock[i] += cost;
                }
            } else {
                clock[i] += cost;
            }
            done[i] += 1;
        }
        clock
    }

    /// Hit/miss statistics of the cache serving `core` at `level`
    /// (1-based).
    pub fn cache_stats(&self, level: u8, core: CoreId) -> Option<(u64, u64)> {
        let li = self.spec.caches.iter().position(|c| c.level == level)?;
        let g = self.group_of[li][core];
        Some(self.caches[li][g].stats())
    }
}
