//! Seeded perturbation of machine specifications — the generator behind
//! the machine zoo.
//!
//! Gréhant et al.'s cache-aware-scheduling results (see PAPERS.md)
//! motivate validating detection over *heterogeneous* machine mixes, not
//! just the paper's four hand-built presets. [`perturb`] derives a new
//! valid [`MachineSpec`] from a base preset by randomly — but
//! deterministically, from a seed — varying the knobs that stress the
//! Servet detection algorithms: cache capacities and associativities,
//! sharing topology, bus capacity, memory latency, and clock rate.
//!
//! Every perturbation preserves [`MachineSpec::validate`] invariants by
//! construction: sizes move in power-of-two steps (set counts stay powers
//! of two), outer levels never shrink below twice the level above them
//! (so distinct levels stay distinguishable), and any level made shared
//! switches to physical indexing.

use crate::spec::{Indexing, MachineSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which knobs [`perturb`] may turn, and how far.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbConfig {
    /// Allow halving/doubling cache sizes (one power-of-two step per
    /// level).
    pub vary_sizes: bool,
    /// Allow halving/doubling associativities.
    pub vary_associativity: bool,
    /// Allow re-grouping the sharing topology of non-L1 levels.
    pub vary_sharing: bool,
    /// Multiplicative range applied to every memory resource capacity.
    pub bus_scale: (f64, f64),
    /// Multiplicative range applied to the memory latency.
    pub latency_scale: (f64, f64),
    /// Multiplicative range applied to the core clock.
    pub clock_scale: (f64, f64),
    /// Multiplicative range applied to every coherence transaction
    /// latency (one draw scales the whole snoop path, so fast and slow
    /// coherence fabrics both appear in the population).
    pub coherence_scale: (f64, f64),
}

impl Default for PerturbConfig {
    fn default() -> Self {
        Self {
            vary_sizes: true,
            vary_associativity: true,
            vary_sharing: true,
            bus_scale: (0.7, 1.4),
            latency_scale: (0.8, 1.3),
            clock_scale: (0.8, 1.25),
            coherence_scale: (0.7, 1.5),
        }
    }
}

/// Draw a multiplier from `range`, tolerating degenerate ranges: a
/// zero-width range (`lo == hi`) is a fixed scale, not a panic —
/// `(1.0, 1.0)` is how a knob is disabled.
fn scaled(rng: &mut ChaCha8Rng, (lo, hi): (f64, f64)) -> f64 {
    assert!(
        lo <= hi && lo > 0.0,
        "scale range ({lo}, {hi}) must be positive and ordered"
    );
    if lo < hi {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

/// A deterministic perturbation of `base`: the same `(base, seed,
/// config)` always yields the same spec. The result re-validates; a
/// violation is a bug in this module, not in the caller.
pub fn perturb(base: &MachineSpec, seed: u64, config: &PerturbConfig) -> MachineSpec {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut spec = base.clone();
    spec.name = format!("{}-z{seed:016x}", base.name);

    spec.clock_ghz *= scaled(&mut rng, config.clock_scale);

    let mut prev_size = 0usize;
    for cache in &mut spec.caches {
        if config.vary_sizes {
            // One power-of-two step in either direction, biased towards
            // staying put; never shrink to fewer than two sets and never
            // within a factor of two of the level above.
            let step = [1usize, 2, 1, 1][rng.gen_range(0..4usize)];
            let grow = rng.gen_bool(0.5);
            if step == 2 {
                if grow {
                    cache.size *= 2;
                } else if cache.num_sets() >= 4 && cache.size / 2 >= prev_size * 2 {
                    cache.size /= 2;
                }
            }
        }
        if config.vary_associativity {
            let step = [1usize, 2, 1][rng.gen_range(0..3usize)];
            let grow = rng.gen_bool(0.5);
            if step == 2 {
                if grow && cache.num_sets() >= 4 {
                    cache.associativity *= 2;
                } else if !grow && cache.associativity >= 2 {
                    cache.associativity /= 2;
                }
            }
        }
        // Keep the hierarchy strictly widening so detected transitions
        // stay separable. Doubling the level's own size preserves its
        // line/associativity divisibility and power-of-two set count.
        while prev_size > 0 && cache.size < prev_size * 2 {
            cache.size *= 2;
        }
        prev_size = cache.size;

        if config.vary_sharing && cache.level > 1 {
            let cores = spec.num_cores;
            let choices: Vec<usize> = [1usize, 2, 4]
                .into_iter()
                .filter(|&k| k <= cores && cores.is_multiple_of(k))
                .collect();
            let k = choices[rng.gen_range(0..choices.len())];
            let rotation = rng.gen_range(0..cores);
            cache.sharing = rotated_groups(cores, k, rotation);
            if k > 1 {
                // A shared level must be physically indexed.
                cache.indexing = Indexing::Physical;
            }
        }
    }

    for resource in &mut spec.memory.resources {
        resource.capacity_gbs *= scaled(&mut rng, config.bus_scale);
    }
    spec.memory.latency_cycles *= scaled(&mut rng, config.latency_scale);

    // The coherence draw comes last so that enabling it never moves the
    // cache-geometry draws of an existing seed (the zoo's ground truths
    // stay put).
    if let Some(coherence) = &mut spec.coherence {
        let s = scaled(&mut rng, config.coherence_scale);
        coherence.invalidate_cycles *= s;
        coherence.writeback_cycles *= s;
        coherence.intervention_cycles *= s;
        coherence.upgrade_cycles *= s;
        coherence.bus_occupancy_cycles *= s;
    }

    debug_assert!(
        spec.validate().is_ok(),
        "perturbation broke spec invariants: {:?}",
        spec.validate()
    );
    spec
}

/// Partition `0..cores` into groups of `k`, rotating the core ids by
/// `rotation` first so group membership varies between seeds while still
/// covering every core exactly once.
fn rotated_groups(cores: usize, k: usize, rotation: usize) -> Vec<Vec<usize>> {
    let mut ids: Vec<usize> = (0..cores).collect();
    ids.rotate_left(rotation % cores);
    ids.chunks(k)
        .map(|chunk| {
            let mut group = chunk.to_vec();
            group.sort_unstable();
            group
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn perturbed_specs_stay_valid() {
        let config = PerturbConfig::default();
        for base in [
            presets::tiny_smp(),
            presets::tiny_shared_l2(),
            presets::tiny_numa(),
            presets::dunnington(),
            presets::finis_terrae_node(),
        ] {
            for seed in 0..64 {
                let spec = perturb(&base, seed, &config);
                spec.validate()
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", spec.name));
            }
        }
    }

    #[test]
    fn same_seed_same_spec() {
        let base = presets::tiny_shared_l2();
        let config = PerturbConfig::default();
        assert_eq!(perturb(&base, 42, &config), perturb(&base, 42, &config));
    }

    #[test]
    fn different_seeds_vary_the_population() {
        let base = presets::tiny_smp();
        let config = PerturbConfig::default();
        let distinct_sizes: std::collections::BTreeSet<usize> = (0..32)
            .map(|seed| perturb(&base, seed, &config).caches[1].size)
            .collect();
        assert!(
            distinct_sizes.len() >= 2,
            "perturbation never moved the L2 size: {distinct_sizes:?}"
        );
    }

    #[test]
    fn hierarchy_stays_strictly_widening() {
        let config = PerturbConfig::default();
        for seed in 0..64 {
            let spec = perturb(&presets::dunnington(), seed, &config);
            for pair in spec.caches.windows(2) {
                assert!(
                    pair[1].size >= pair[0].size * 2,
                    "{}: L{} {} vs L{} {}",
                    spec.name,
                    pair[0].level,
                    pair[0].size,
                    pair[1].level,
                    pair[1].size
                );
            }
        }
    }

    #[test]
    fn shared_levels_become_physical() {
        let config = PerturbConfig::default();
        for seed in 0..64 {
            let spec = perturb(&presets::tiny_smp(), seed, &config);
            for cache in &spec.caches {
                if cache.is_shared() {
                    assert_eq!(cache.indexing, Indexing::Physical, "{}", spec.name);
                }
            }
        }
    }

    /// The fully-disabled config is the identity (up to the zoo name
    /// tag): zero-width scale ranges are fixed scales, not panics.
    #[test]
    fn zero_noise_config_is_the_identity() {
        let config = PerturbConfig {
            vary_sizes: false,
            vary_associativity: false,
            vary_sharing: false,
            bus_scale: (1.0, 1.0),
            latency_scale: (1.0, 1.0),
            clock_scale: (1.0, 1.0),
            coherence_scale: (1.0, 1.0),
        };
        for base in [presets::tiny_smp(), presets::dunnington()] {
            for seed in [0, 7, 42] {
                let mut spec = perturb(&base, seed, &config);
                spec.name = base.name.clone();
                assert_eq!(spec, base, "seed {seed} was not an identity");
            }
        }
    }

    /// Extreme scale ranges may not break spec invariants: everything
    /// stays finite, positive and valid.
    #[test]
    fn extreme_noise_stays_clamped_and_valid() {
        let config = PerturbConfig {
            bus_scale: (0.001, 1000.0),
            latency_scale: (0.001, 1000.0),
            clock_scale: (0.001, 1000.0),
            coherence_scale: (0.001, 1000.0),
            ..PerturbConfig::default()
        };
        for seed in 0..32 {
            let spec = perturb(&presets::tiny_shared_l2(), seed, &config);
            spec.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(spec.clock_ghz.is_finite() && spec.clock_ghz > 0.0);
            assert!(spec.memory.latency_cycles.is_finite());
            let c = spec.coherence.expect("base has coherence");
            assert!(c.writeback_cycles.is_finite() && c.writeback_cycles > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive and ordered")]
    fn inverted_scale_range_panics() {
        let config = PerturbConfig {
            clock_scale: (2.0, 1.0),
            ..PerturbConfig::default()
        };
        perturb(&presets::tiny_smp(), 1, &config);
    }

    /// Round-trip stability: re-perturbing with the same seed is stable
    /// across configs (not just the default), including ones that
    /// disable individual knobs — the property zoo resume relies on.
    #[test]
    fn seed_stability_round_trips() {
        let configs = [
            PerturbConfig::default(),
            PerturbConfig {
                vary_sharing: false,
                ..PerturbConfig::default()
            },
            PerturbConfig {
                coherence_scale: (1.0, 1.0),
                ..PerturbConfig::default()
            },
        ];
        for base in [presets::tiny_numa(), presets::finis_terrae_node()] {
            for config in &configs {
                for seed in 0..16 {
                    let a = perturb(&base, seed, config);
                    let b = perturb(&base, seed, config);
                    assert_eq!(a, b, "seed {seed} diverged");
                }
            }
        }
    }

    /// The population explores the coherence-latency space.
    #[test]
    fn coherence_latencies_vary_across_seeds() {
        let base = presets::tiny_smp();
        let config = PerturbConfig::default();
        let distinct: std::collections::BTreeSet<u64> = (0..16)
            .map(|seed| {
                perturb(&base, seed, &config)
                    .coherence
                    .expect("base has coherence")
                    .writeback_cycles
                    .to_bits()
            })
            .collect();
        assert!(distinct.len() >= 8, "coherence never varied: {distinct:?}");
    }

    #[test]
    fn disabled_knobs_leave_the_geometry_alone() {
        let config = PerturbConfig {
            vary_sizes: false,
            vary_associativity: false,
            vary_sharing: false,
            ..PerturbConfig::default()
        };
        let base = presets::tiny_numa();
        let spec = perturb(&base, 9, &config);
        for (a, b) in base.caches.iter().zip(&spec.caches) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.associativity, b.associativity);
            assert_eq!(a.sharing, b.sharing);
        }
    }
}
