//! Machine presets.
//!
//! The four machines of the paper's experimental evaluation (§IV), plus
//! small synthetic machines used to keep unit tests fast.
//!
//! Cache hit/miss costs are representative cycle counts for each
//! microarchitecture, not vendor-exact figures: the Servet algorithms only
//! consume *relative* shapes (plateaus, ratios, transitions), as the paper
//! itself stresses by normalizing miss rates in Fig. 3.

use crate::coherence::CoherenceSpec;
use crate::spec::{
    CacheLevelSpec, CoreId, Indexing, MachineSpec, MemResource, MemorySpec, PageAllocPolicy,
    TlbSpec,
};
use crate::{KB, MB};

/// Private (per-core) sharing: one singleton group per core.
fn private(cores: usize) -> Vec<Vec<CoreId>> {
    (0..cores).map(|c| vec![c]).collect()
}

/// Groups of `k` consecutive cores: `{0..k}, {k..2k}, ...`.
fn consecutive_groups(cores: usize, k: usize) -> Vec<Vec<CoreId>> {
    (0..cores / k)
        .map(|g| (g * k..(g + 1) * k).collect())
        .collect()
}

/// The 24-core Dunnington node: 4 × Intel Xeon E7450 hexa-core, 2.40 GHz.
///
/// Per the paper (§IV and Fig. 8a): individual 32 KB L1; 3 MB L2 shared by
/// core pairs; 12 MB L3 shared by the six cores of a processor; and an OS
/// core numbering where processor `p` holds cores `{3p, 3p+1, 3p+2,
/// 3p+12, 3p+13, 3p+14}` — so core 0 shares its L2 with core 12, not with
/// core 1. A single front-side bus serves all cores, which is why the
/// memory-overhead benchmark sees the same degradation for every pair
/// (Fig. 9a).
pub fn dunnington() -> MachineSpec {
    let cores = 24;
    // Processor p: cores {3p, 3p+1, 3p+2} ∪ {3p+12, 3p+13, 3p+14}.
    let mut l3_groups = Vec::new();
    let mut l2_groups = Vec::new();
    for p in 0..4 {
        let lo = 3 * p;
        let a = [lo, lo + 1, lo + 2];
        let b = [lo + 12, lo + 13, lo + 14];
        l3_groups.push(a.iter().chain(b.iter()).copied().collect::<Vec<_>>());
        // L2 shared by pairs: (3p+i, 3p+12+i).
        for i in 0..3 {
            l2_groups.push(vec![lo + i, lo + 12 + i]);
        }
    }
    MachineSpec {
        name: "dunnington".into(),
        clock_ghz: 2.4,
        num_cores: cores,
        page_size: 4 * KB,
        caches: vec![
            CacheLevelSpec {
                level: 1,
                size: 32 * KB,
                line_size: 64,
                associativity: 8,
                indexing: Indexing::Virtual,
                sharing: private(cores),
                hit_cycles: 3.0,
            },
            CacheLevelSpec {
                level: 2,
                size: 3 * MB,
                line_size: 64,
                associativity: 12,
                indexing: Indexing::Physical,
                sharing: l2_groups,
                hit_cycles: 12.0,
            },
            CacheLevelSpec {
                level: 3,
                size: 12 * MB,
                line_size: 64,
                associativity: 24,
                indexing: Indexing::Physical,
                sharing: l3_groups,
                hit_cycles: 45.0,
            },
        ],
        memory: MemorySpec {
            latency_cycles: 250.0,
            core_stream_gbs: 4.0,
            resources: vec![MemResource {
                name: "fsb".into(),
                capacity_gbs: 6.4,
                cores: (0..cores).collect(),
            }],
        },
        page_alloc: PageAllocPolicy::Random,
        prefetch_max_stride: 512,
        tlb: None,
        // FSB-snooped MESI: invalidations and interventions cross the
        // same front-side bus as memory traffic, so they are slow.
        coherence: Some(CoherenceSpec {
            invalidate_cycles: 20.0,
            writeback_cycles: 60.0,
            intervention_cycles: 40.0,
            upgrade_cycles: 16.0,
            bus_occupancy_cycles: 6.0,
        }),
    }
}

/// One 16-core node of the Finis Terrae supercomputer: 8 × Itanium2
/// Montvale dual-core, 1.60 GHz, two cells of 8 cores.
///
/// All caches are private (16 KB L1, 256 KB L2, 9 MB L3). Memory buses are
/// shared by processor pairs (4 cores per bus); each cell has its own
/// memory. Cross-cell concurrent accesses show no mutual overhead
/// (Fig. 9a): each cell's cores reach their own memory.
pub fn finis_terrae_node() -> MachineSpec {
    let cores = 16;
    let mut resources = Vec::new();
    // Buses shared by pairs of dual-core processors: cores {0-3}, {4-7}, ...
    for (i, group) in consecutive_groups(cores, 4).into_iter().enumerate() {
        resources.push(MemResource {
            name: format!("bus{i}"),
            capacity_gbs: 4.5,
            cores: group,
        });
    }
    // Per-cell memory controllers: cores {0-7}, {8-15}.
    for (i, group) in consecutive_groups(cores, 8).into_iter().enumerate() {
        resources.push(MemResource {
            name: format!("cell{i}"),
            capacity_gbs: 6.0,
            cores: group,
        });
    }
    MachineSpec {
        name: "finis_terrae".into(),
        clock_ghz: 1.6,
        num_cores: cores,
        page_size: 4 * KB,
        caches: vec![
            CacheLevelSpec {
                level: 1,
                size: 16 * KB,
                line_size: 64,
                associativity: 4,
                indexing: Indexing::Virtual,
                sharing: private(cores),
                hit_cycles: 2.0,
            },
            CacheLevelSpec {
                level: 2,
                size: 256 * KB,
                line_size: 128,
                associativity: 8,
                indexing: Indexing::Physical,
                sharing: private(cores),
                hit_cycles: 8.0,
            },
            CacheLevelSpec {
                level: 3,
                size: 9 * MB,
                line_size: 128,
                associativity: 18,
                indexing: Indexing::Physical,
                sharing: private(cores),
                hit_cycles: 25.0,
            },
        ],
        memory: MemorySpec {
            latency_cycles: 350.0,
            core_stream_gbs: 4.0,
            resources,
        },
        page_alloc: PageAllocPolicy::Random,
        prefetch_max_stride: 512,
        tlb: None,
        // Cell-crossing snoops on the Itanium2 cells are the slowest of
        // the paper's machines.
        coherence: Some(CoherenceSpec {
            invalidate_cycles: 30.0,
            writeback_cycles: 90.0,
            intervention_cycles: 60.0,
            upgrade_cycles: 24.0,
            bus_occupancy_cycles: 8.0,
        }),
    }
}

/// The Dempsey machine: one Intel Xeon 5060 dual-core, 3.20 GHz, 16 KB L1
/// and 2 MB L2 per core.
///
/// This is the paper's showcase for the probabilistic algorithm: without
/// page coloring the L2 transition is smeared over [512 KB, 2 MB]
/// (Fig. 2), a naive peak reading yields 1 MB, and the Fig. 3 algorithm
/// recovers the correct 2 MB.
pub fn dempsey() -> MachineSpec {
    let cores = 2;
    MachineSpec {
        name: "dempsey".into(),
        clock_ghz: 3.2,
        num_cores: cores,
        page_size: 4 * KB,
        caches: vec![
            CacheLevelSpec {
                level: 1,
                size: 16 * KB,
                line_size: 64,
                associativity: 8,
                indexing: Indexing::Virtual,
                sharing: private(cores),
                hit_cycles: 3.0,
            },
            CacheLevelSpec {
                level: 2,
                size: 2 * MB,
                line_size: 64,
                associativity: 8,
                indexing: Indexing::Physical,
                sharing: private(cores),
                hit_cycles: 14.0,
            },
        ],
        memory: MemorySpec {
            latency_cycles: 300.0,
            core_stream_gbs: 3.0,
            resources: vec![MemResource {
                name: "fsb".into(),
                capacity_gbs: 4.2,
                cores: (0..cores).collect(),
            }],
        },
        page_alloc: PageAllocPolicy::Random,
        prefetch_max_stride: 512,
        tlb: None,
        coherence: Some(CoherenceSpec {
            invalidate_cycles: 25.0,
            writeback_cycles: 80.0,
            intervention_cycles: 55.0,
            upgrade_cycles: 20.0,
            bus_occupancy_cycles: 6.0,
        }),
    }
}

/// The unicore AMD Athlon 3200, 2 GHz, 64 KB L1 and 512 KB L2.
pub fn athlon3200() -> MachineSpec {
    MachineSpec {
        name: "athlon3200".into(),
        clock_ghz: 2.0,
        num_cores: 1,
        page_size: 4 * KB,
        caches: vec![
            CacheLevelSpec {
                level: 1,
                size: 64 * KB,
                line_size: 64,
                associativity: 2,
                indexing: Indexing::Virtual,
                sharing: private(1),
                hit_cycles: 3.0,
            },
            CacheLevelSpec {
                level: 2,
                size: 512 * KB,
                line_size: 64,
                associativity: 16,
                indexing: Indexing::Physical,
                sharing: private(1),
                hit_cycles: 12.0,
            },
        ],
        memory: MemorySpec {
            latency_cycles: 200.0,
            core_stream_gbs: 2.5,
            resources: vec![MemResource {
                name: "fsb".into(),
                capacity_gbs: 3.0,
                cores: vec![0],
            }],
        },
        page_alloc: PageAllocPolicy::Random,
        prefetch_max_stride: 512,
        tlb: None,
        // A single core has no one to snoop, but keeping the parameters
        // set exercises the no-sharer fast paths.
        coherence: Some(CoherenceSpec::default()),
    }
}

/// A small 4-core SMP with private 8 KB L1 and private 64 KB L2, used to
/// keep unit tests fast. One shared front-side bus.
///
/// Pages are 1 KB so that even these little caches span enough pages for
/// the binomial statistics of physically indexed caches to be
/// well-behaved — the same page-count-to-cache-size ratio the paper's
/// machines have with 4 KB pages and megabyte caches.
pub fn tiny_smp() -> MachineSpec {
    let cores = 4;
    MachineSpec {
        name: "tiny_smp".into(),
        clock_ghz: 1.0,
        num_cores: cores,
        page_size: KB,
        caches: vec![
            CacheLevelSpec {
                level: 1,
                size: 8 * KB,
                line_size: 64,
                associativity: 2,
                indexing: Indexing::Virtual,
                sharing: private(cores),
                hit_cycles: 2.0,
            },
            CacheLevelSpec {
                level: 2,
                size: 64 * KB,
                line_size: 64,
                associativity: 4,
                indexing: Indexing::Physical,
                sharing: private(cores),
                hit_cycles: 10.0,
            },
        ],
        memory: MemorySpec {
            latency_cycles: 100.0,
            core_stream_gbs: 2.0,
            resources: vec![MemResource {
                name: "fsb".into(),
                capacity_gbs: 3.0,
                cores: (0..cores).collect(),
            }],
        },
        page_alloc: PageAllocPolicy::Random,
        prefetch_max_stride: 512,
        tlb: None,
        coherence: Some(CoherenceSpec::default()),
    }
}

/// A small 4-core machine whose L2 is shared by core pairs {0,1} and
/// {2,3} — the cheapest machine on which the shared-cache benchmark has
/// something to find.
pub fn tiny_shared_l2() -> MachineSpec {
    let mut spec = tiny_smp();
    spec.name = "tiny_shared_l2".into();
    spec.caches[1].sharing = consecutive_groups(4, 2);
    spec.caches[1].size = 128 * KB;
    spec
}

/// A small two-cell NUMA machine: 8 cores, two cells of 4, per-cell
/// memory controllers and per-pair buses — a miniature Finis Terrae for
/// fast memory-overhead tests.
pub fn tiny_numa() -> MachineSpec {
    let cores = 8;
    let mut spec = tiny_smp();
    spec.name = "tiny_numa".into();
    spec.num_cores = cores;
    for c in &mut spec.caches {
        c.sharing = private(cores);
    }
    let mut resources = Vec::new();
    for (i, group) in consecutive_groups(cores, 2).into_iter().enumerate() {
        resources.push(MemResource {
            name: format!("bus{i}"),
            capacity_gbs: 2.5,
            cores: group,
        });
    }
    for (i, group) in consecutive_groups(cores, 4).into_iter().enumerate() {
        resources.push(MemResource {
            name: format!("cell{i}"),
            capacity_gbs: 3.5,
            cores: group,
        });
    }
    spec.memory.resources = resources;
    spec.memory.core_stream_gbs = 2.0;
    spec
}

/// The tiny SMP with a 64-entry data TLB (25-cycle miss), for the TLB
/// micro-probe extension.
pub fn tiny_with_tlb() -> MachineSpec {
    let mut spec = tiny_smp();
    spec.name = "tiny_tlb".into();
    spec.tlb = Some(TlbSpec {
        entries: 64,
        miss_cycles: 25.0,
    });
    spec
}

/// A 4-core machine with a megabyte-range hierarchy: private 32 KB L1,
/// 2 MB L2 shared by core pairs, 4 KB pages — paper-machine geometry at
/// test-suite core counts.
///
/// This is the first MB-range zoo member: a full mcalibrator sweep over
/// a 2 MB L2 replays tens of millions of simulated accesses, which the
/// pre-rewrite engine could not afford in CI. Its cache sizes sit where
/// the paper's Dempsey L2 does, so the Fig. 2/Fig. 3 smearing-and-
/// recovery story plays out at real scale instead of the tiny presets'.
pub fn mb_smp() -> MachineSpec {
    let cores = 4;
    MachineSpec {
        name: "mb_smp".into(),
        clock_ghz: 2.4,
        num_cores: cores,
        page_size: 4 * KB,
        caches: vec![
            CacheLevelSpec {
                level: 1,
                size: 32 * KB,
                line_size: 64,
                associativity: 8,
                indexing: Indexing::Virtual,
                sharing: private(cores),
                hit_cycles: 3.0,
            },
            CacheLevelSpec {
                level: 2,
                size: 2 * MB,
                line_size: 64,
                associativity: 8,
                indexing: Indexing::Physical,
                sharing: consecutive_groups(cores, 2),
                hit_cycles: 14.0,
            },
        ],
        memory: MemorySpec {
            latency_cycles: 250.0,
            core_stream_gbs: 3.0,
            resources: vec![MemResource {
                name: "fsb".into(),
                capacity_gbs: 5.0,
                cores: (0..cores).collect(),
            }],
        },
        page_alloc: PageAllocPolicy::Random,
        prefetch_max_stride: 512,
        tlb: None,
        coherence: Some(CoherenceSpec {
            invalidate_cycles: 25.0,
            writeback_cycles: 80.0,
            intervention_cycles: 55.0,
            upgrade_cycles: 20.0,
            bus_occupancy_cycles: 6.0,
        }),
    }
}

/// All four paper machines, in the order the paper introduces them.
pub fn paper_machines() -> Vec<MachineSpec> {
    vec![dunnington(), finis_terrae_node(), dempsey(), athlon3200()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dunnington_numbering_matches_fig8a() {
        let d = dunnington();
        // Processor 1 holds {3,4,5,15,16,17}; core 3 pairs with 15 on L2.
        assert!(d.caches[1].shares(3, 15));
        assert!(d.caches[2].shares(3, 17));
        assert!(!d.caches[2].shares(2, 3));
    }

    #[test]
    fn way_size_accommodates_1kb_stride() {
        // The Saavedra–Smith traversal relies on the 1 KB stride being no
        // larger than any cache's way size (size / associativity), so an
        // array of exactly the cache size fills it without early thrashing.
        for m in paper_machines() {
            for c in &m.caches {
                assert!(
                    c.size / c.associativity >= KB,
                    "{} L{} way too small",
                    m.name,
                    c.level
                );
            }
        }
    }

    #[test]
    fn tiny_machines_are_small() {
        assert!(tiny_smp().caches.iter().all(|c| c.size <= 128 * KB));
        assert_eq!(tiny_shared_l2().sharing_pairs(2), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn tiny_numa_resources() {
        let m = tiny_numa();
        m.validate().unwrap();
        assert_eq!(m.memory.resources.len(), 4 + 2);
    }

    #[test]
    fn mb_smp_is_mb_range_and_valid() {
        let m = mb_smp();
        m.validate().unwrap();
        assert!(m.caches.iter().any(|c| c.size >= MB));
        assert_eq!(m.sharing_pairs(2), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn paper_machine_count() {
        assert_eq!(paper_machines().len(), 4);
        // 10 cache sizes across the four machines (§IV-A).
        let total: usize = paper_machines().iter().map(|m| m.caches.len()).sum();
        assert_eq!(total, 10);
    }
}
