//! MESI cache-coherence layer over the set-associative cache models.
//!
//! The paper's §III-B shared-cache and §III-D communication stages infer
//! cross-core effects purely from aggregate timings; this module gives the
//! simulator the mechanism those timings come from on real hardware: a
//! per-line MESI state machine, a snoop-bus transaction model with
//! configurable latencies, and traffic counters (invalidations,
//! writebacks, cache-to-cache interventions, upgrades) that the detection
//! stages can decompose misses with.
//!
//! The engine is deliberately a *directory*, not an actor system: one
//! [`CoherenceEngine`] owned by the [`crate::machine::Machine`] tracks the
//! per-core MESI state of every physical line ever written or read while
//! coherence is enabled, keyed by the physical line address at the first
//! cache level's line granularity. The cycle engine consults it on every
//! access; the engine answers with extra cycles (snoop-bus wait plus
//! transaction latency) and bookkeeping (which remote copies to
//! invalidate, whether a miss was a coherence miss or a capacity miss).
//!
//! Two simplifications, both deterministic and both documented here
//! because they matter for interpreting counters:
//!
//! * Evictions are silent: a core that loses a line to capacity keeps its
//!   directory state until the next coherence transaction touches the
//!   line. Real S/E evictions are silent too; the model extends this to M
//!   (the writeback is charged lazily, when a remote core next requests
//!   the line).
//! * Invalidations are applied to the other cores' caches using the
//!   *accessing* core's line keys, which is exact whenever the cores
//!   share one address space — the case for every coherence probe (the
//!   false-sharing sweep and the cache-mediated communication model both
//!   traverse a single shared [`crate::machine::SimArray`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::spec::CoreId;

/// Latencies of the snoop-bus transactions the MESI layer can issue, in
/// core cycles. These are machine parameters — presets set them, the zoo
/// perturbs them, and run manifests record them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherenceSpec {
    /// Cycles to invalidate the remote copies of a line on a store.
    pub invalidate_cycles: f64,
    /// Cycles for the owner of a Modified line to write it back when
    /// another core requests the line.
    pub writeback_cycles: f64,
    /// Cycles for a cache-to-cache transfer (the requester receives the
    /// line from the previous owner instead of from memory).
    pub intervention_cycles: f64,
    /// Cycles for a Shared→Modified upgrade broadcast.
    pub upgrade_cycles: f64,
    /// Cycles each transaction occupies the snoop bus. Concurrent
    /// transactions serialize on this, exactly like memory accesses
    /// serialize on the front-side bus.
    pub bus_occupancy_cycles: f64,
}

impl Default for CoherenceSpec {
    fn default() -> Self {
        Self {
            invalidate_cycles: 12.0,
            writeback_cycles: 40.0,
            intervention_cycles: 25.0,
            upgrade_cycles: 10.0,
            bus_occupancy_cycles: 4.0,
        }
    }
}

impl CoherenceSpec {
    /// Validate the parameters; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("invalidate_cycles", self.invalidate_cycles),
            ("writeback_cycles", self.writeback_cycles),
            ("intervention_cycles", self.intervention_cycles),
            ("upgrade_cycles", self.upgrade_cycles),
            ("bus_occupancy_cycles", self.bus_occupancy_cycles),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("coherence {name} = {v} must be finite and >= 0"));
            }
        }
        Ok(())
    }
}

/// MESI state of one core's copy of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MesiState {
    /// Dirty and exclusive: this core owns the only valid copy.
    Modified,
    /// Clean and exclusive: memory is up to date, no other copies.
    Exclusive,
    /// Clean, possibly replicated in other cores' caches.
    Shared,
    /// No valid copy.
    Invalid,
}

/// Snoop-bus traffic accumulated since construction or the last reset.
///
/// All counters are exact integers so that determinism is checkable
/// bit-for-bit: the acceptance gate for the zoo requires identical
/// traffic across runs and worker counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceTraffic {
    /// Remote copies invalidated by stores.
    pub invalidations: u64,
    /// Modified lines written back on a remote request.
    pub writebacks: u64,
    /// Cache-to-cache transfers (line supplied by the previous owner).
    pub interventions: u64,
    /// Shared→Modified upgrade broadcasts.
    pub upgrades: u64,
    /// Misses on lines this core lost to a remote invalidation — the
    /// coherence share of the §III-B miss decomposition.
    pub coherence_misses: u64,
    /// Misses with no preceding invalidation (capacity/cold misses) on
    /// lines the directory tracks.
    pub capacity_misses: u64,
}

impl CoherenceTraffic {
    /// Total snoop-bus transactions issued.
    pub fn transactions(&self) -> u64 {
        self.writebacks + self.interventions + self.upgrades
    }

    /// Fraction of classified misses that were coherence misses; 0 when
    /// no miss has been classified.
    pub fn coherence_miss_fraction(&self) -> f64 {
        let total = self.coherence_misses + self.capacity_misses;
        if total == 0 {
            0.0
        } else {
            self.coherence_misses as f64 / total as f64
        }
    }
}

/// Directory entry: the MESI state each core holds for one line, plus
/// which cores have lost their copy to an invalidation and not yet
/// re-accessed the line (the coherence-miss classifier).
#[derive(Debug, Clone)]
struct LineDir {
    states: Vec<MesiState>,
    invalidated: u64,
}

impl LineDir {
    fn new(num_cores: usize) -> Self {
        Self {
            states: vec![MesiState::Invalid; num_cores],
            invalidated: 0,
        }
    }
}

/// What the cycle engine must do after consulting the directory for one
/// access.
#[derive(Debug, Clone)]
pub struct CoherenceOutcome {
    /// Extra cycles this access pays: snoop-bus wait plus transaction
    /// latencies.
    pub extra_cycles: f64,
    /// Remote cores whose cached copies of the line must be removed
    /// (sorted ascending; deterministic).
    pub invalidate_cores: Vec<CoreId>,
    /// Whether a miss on this access was a coherence miss (the line was
    /// invalidated out from under this core).
    pub coherence_miss: bool,
    /// Whether the line was supplied cache-to-cache by the previous
    /// owner (an intervention): the access does not go to memory.
    pub supplied_by_cache: bool,
}

/// The per-machine MESI directory and snoop bus.
#[derive(Debug, Clone)]
pub struct CoherenceEngine {
    spec: CoherenceSpec,
    num_cores: usize,
    /// `BTreeMap` (not `HashMap`): iteration order never influences
    /// decisions, but deterministic structures keep the whole engine
    /// trivially reproducible.
    lines: BTreeMap<u64, LineDir>,
    traffic: CoherenceTraffic,
    /// Cycle at which the snoop bus becomes free.
    snoop_free_at: f64,
}

impl CoherenceEngine {
    /// Build an engine for a machine with `num_cores` cores.
    pub fn new(spec: CoherenceSpec, num_cores: usize) -> Self {
        assert!(
            num_cores <= 64,
            "coherence directory tracks at most 64 cores"
        );
        Self {
            spec,
            num_cores,
            lines: BTreeMap::new(),
            traffic: CoherenceTraffic::default(),
            snoop_free_at: 0.0,
        }
    }

    /// The engine's transaction latencies.
    pub fn spec(&self) -> &CoherenceSpec {
        &self.spec
    }

    /// Traffic accumulated so far.
    pub fn traffic(&self) -> CoherenceTraffic {
        self.traffic
    }

    /// Return the accumulated traffic and zero the counters, keeping the
    /// directory state and the snoop-bus clock.
    pub fn take_traffic(&mut self) -> CoherenceTraffic {
        std::mem::take(&mut self.traffic)
    }

    /// Drop all directory state, traffic and the snoop-bus clock.
    pub fn reset(&mut self) {
        self.lines.clear();
        self.traffic = CoherenceTraffic::default();
        self.snoop_free_at = 0.0;
    }

    /// MESI state `core` holds for `phys_line` (Invalid if untracked).
    pub fn state_of(&self, core: CoreId, phys_line: u64) -> MesiState {
        self.lines
            .get(&phys_line)
            .map_or(MesiState::Invalid, |d| d.states[core])
    }

    /// Serialize one transaction on the snoop bus: returns the wait +
    /// occupancy cycles the requester pays, and advances the bus clock.
    fn bus_transaction(&mut self, now: f64) -> f64 {
        let start = now.max(self.snoop_free_at);
        self.snoop_free_at = start + self.spec.bus_occupancy_cycles;
        (start - now) + self.spec.bus_occupancy_cycles
    }

    /// Record an access by `core` to `phys_line` at virtual time `now`
    /// and advance the MESI state machine.
    ///
    /// `cache_hit` is what the cache model said *before* coherence: it is
    /// used only to classify misses, never to decide transitions (the
    /// directory is authoritative for ownership).
    pub fn access(
        &mut self,
        core: CoreId,
        phys_line: u64,
        write: bool,
        cache_hit: bool,
        now: f64,
    ) -> CoherenceOutcome {
        let num_cores = self.num_cores;
        let dir = self
            .lines
            .entry(phys_line)
            .or_insert_with(|| LineDir::new(num_cores));

        // Classify the miss before mutating anything: a miss on a line
        // the directory saw invalidated out from under this core is a
        // coherence miss; any other tracked miss is capacity/cold.
        let was_invalidated = dir.invalidated & (1 << core) != 0;
        let coherence_miss = !cache_hit && was_invalidated;
        if !cache_hit {
            if coherence_miss {
                self.traffic.coherence_misses += 1;
            } else {
                self.traffic.capacity_misses += 1;
            }
        }
        dir.invalidated &= !(1 << core);

        let my_state = dir.states[core];
        let remote: Vec<CoreId> = (0..num_cores)
            .filter(|&c| c != core && dir.states[c] != MesiState::Invalid)
            .collect();
        let remote_modified = remote.iter().any(|&c| dir.states[c] == MesiState::Modified);

        let mut latency = 0.0;
        let mut transactions = 0u32;
        let mut invalidate_cores = Vec::new();
        let mut supplied_by_cache = false;

        if write {
            match my_state {
                MesiState::Modified => {}
                MesiState::Exclusive => {
                    // E→M is silent: no other copy exists.
                    dir.states[core] = MesiState::Modified;
                }
                MesiState::Shared => {
                    // Upgrade: broadcast an invalidation to every sharer.
                    self.traffic.upgrades += 1;
                    latency += self.spec.upgrade_cycles;
                    transactions += 1;
                    if !remote.is_empty() {
                        self.traffic.invalidations += remote.len() as u64;
                        latency += self.spec.invalidate_cycles;
                        invalidate_cores = remote.clone();
                    }
                    dir.states[core] = MesiState::Modified;
                }
                MesiState::Invalid => {
                    // Read-for-ownership: fetch the line, invalidating
                    // every remote copy; a dirty owner writes back and
                    // supplies the line cache-to-cache.
                    if remote_modified {
                        self.traffic.writebacks += 1;
                        self.traffic.interventions += 1;
                        latency += self.spec.writeback_cycles + self.spec.intervention_cycles;
                        transactions += 1;
                        supplied_by_cache = true;
                    }
                    if !remote.is_empty() {
                        self.traffic.invalidations += remote.len() as u64;
                        latency += self.spec.invalidate_cycles;
                        transactions += 1;
                        invalidate_cores = remote.clone();
                    }
                    dir.states[core] = MesiState::Modified;
                }
            }
            for &c in &invalidate_cores {
                dir.states[c] = MesiState::Invalid;
                dir.invalidated |= 1 << c;
            }
        } else {
            match my_state {
                MesiState::Modified | MesiState::Exclusive | MesiState::Shared => {}
                MesiState::Invalid => {
                    if remote_modified {
                        // The dirty owner writes back and supplies the
                        // line; both copies end Shared.
                        self.traffic.writebacks += 1;
                        self.traffic.interventions += 1;
                        latency += self.spec.writeback_cycles + self.spec.intervention_cycles;
                        transactions += 1;
                        supplied_by_cache = true;
                        for c in 0..num_cores {
                            if dir.states[c] == MesiState::Modified {
                                dir.states[c] = MesiState::Shared;
                            }
                        }
                        dir.states[core] = MesiState::Shared;
                    } else if !remote.is_empty() {
                        dir.states[core] = MesiState::Shared;
                    } else {
                        dir.states[core] = MesiState::Exclusive;
                    }
                }
            }
        }

        let mut extra = latency;
        for _ in 0..transactions {
            extra += self.bus_transaction(now + extra);
        }
        CoherenceOutcome {
            extra_cycles: extra,
            invalidate_cores,
            coherence_miss,
            supplied_by_cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CoherenceEngine {
        CoherenceEngine::new(CoherenceSpec::default(), 4)
    }

    #[test]
    fn default_spec_validates() {
        CoherenceSpec::default().validate().unwrap();
        let bad = CoherenceSpec {
            invalidate_cycles: -1.0,
            ..CoherenceSpec::default()
        };
        assert!(bad.validate().is_err());
        let nan = CoherenceSpec {
            writeback_cycles: f64::NAN,
            ..CoherenceSpec::default()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn first_read_is_exclusive_then_silent_upgrade() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Exclusive);
        let out = e.access(0, 7, true, true, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Modified);
        assert_eq!(out.extra_cycles, 0.0);
        assert_eq!(e.traffic().transactions(), 0);
    }

    #[test]
    fn second_reader_shares() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(1, 7, false, false, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Exclusive);
        assert_eq!(e.state_of(1, 7), MesiState::Shared);
        assert_eq!(e.traffic().transactions(), 0);
    }

    #[test]
    fn write_to_shared_upgrades_and_invalidates() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(1, 7, false, false, 0.0);
        e.access(2, 7, false, false, 0.0);
        // Make core 0 Shared too (it currently is Exclusive only if no
        // one else read; here two others read, but 0 stays E in this
        // simplified model until a transaction downgrades it — write
        // from core 1 must still invalidate 0 and 2).
        let out = e.access(1, 7, true, true, 0.0);
        assert_eq!(e.state_of(1, 7), MesiState::Modified);
        assert_eq!(e.state_of(0, 7), MesiState::Invalid);
        assert_eq!(e.state_of(2, 7), MesiState::Invalid);
        assert_eq!(out.invalidate_cores, vec![0, 2]);
        let t = e.traffic();
        assert_eq!(t.upgrades, 1);
        assert_eq!(t.invalidations, 2);
        assert!(out.extra_cycles > 0.0);
    }

    #[test]
    fn read_of_modified_line_forces_writeback_and_intervention() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(0, 7, true, true, 0.0); // 0 now Modified
        let out = e.access(1, 7, false, false, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Shared);
        assert_eq!(e.state_of(1, 7), MesiState::Shared);
        let t = e.traffic();
        assert_eq!(t.writebacks, 1);
        assert_eq!(t.interventions, 1);
        let spec = CoherenceSpec::default();
        assert!(out.extra_cycles >= spec.writeback_cycles + spec.intervention_cycles);
    }

    #[test]
    fn ping_pong_writes_generate_sustained_traffic() {
        let mut e = engine();
        for round in 0..10 {
            let now = round as f64 * 100.0;
            e.access(0, 7, true, round == 0, now);
            e.access(1, 7, true, false, now + 50.0);
        }
        let t = e.traffic();
        // After the first exchange every write invalidates the other
        // core's Modified copy: writeback + intervention + invalidation.
        assert!(t.invalidations >= 18, "{t:?}");
        assert!(t.writebacks >= 17, "{t:?}");
        assert!(t.coherence_misses > 0, "{t:?}");
    }

    #[test]
    fn miss_classification_splits_coherence_from_capacity() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0); // cold: capacity bucket
        e.access(1, 7, true, false, 0.0); // invalidates 0's copy
        let out = e.access(0, 7, false, false, 0.0); // coherence miss
        assert!(out.coherence_miss);
        let t = e.traffic();
        assert_eq!(t.coherence_misses, 1);
        // Cold misses from cores 0 and 1.
        assert_eq!(t.capacity_misses, 2);
        assert!((t.coherence_miss_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snoop_bus_serializes_transactions() {
        let spec = CoherenceSpec {
            bus_occupancy_cycles: 10.0,
            ..CoherenceSpec::default()
        };
        let mut e = CoherenceEngine::new(spec, 2);
        e.access(0, 1, false, false, 0.0);
        e.access(1, 1, false, false, 0.0);
        // Two upgrades issued back-to-back at the same virtual time: the
        // second must wait for the first's bus occupancy.
        let a = e.access(0, 1, true, true, 100.0);
        let b = e.access(1, 1, true, false, 100.0);
        assert!(b.extra_cycles > a.extra_cycles, "{a:?} vs {b:?}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(1, 7, true, false, 0.0);
        assert_ne!(e.traffic(), CoherenceTraffic::default());
        e.reset();
        assert_eq!(e.traffic(), CoherenceTraffic::default());
        assert_eq!(e.state_of(0, 7), MesiState::Invalid);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = engine();
            for i in 0..200u64 {
                let core = (i % 3) as usize;
                let line = i % 5;
                e.access(core, line, i % 2 == 0, i % 4 == 0, i as f64);
            }
            e.traffic()
        };
        assert_eq!(run(), run());
    }
}
