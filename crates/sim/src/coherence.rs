//! MESI cache-coherence layer over the set-associative cache models.
//!
//! The paper's §III-B shared-cache and §III-D communication stages infer
//! cross-core effects purely from aggregate timings; this module gives the
//! simulator the mechanism those timings come from on real hardware: a
//! per-line MESI state machine, a snoop-bus transaction model with
//! configurable latencies, and traffic counters (invalidations,
//! writebacks, cache-to-cache interventions, upgrades) that the detection
//! stages can decompose misses with.
//!
//! The engine is deliberately a *directory*, not an actor system: one
//! [`CoherenceEngine`] owned by the [`crate::machine::Machine`] tracks the
//! per-core MESI state of every physical line ever written or read while
//! coherence is enabled, keyed by the physical line address at the first
//! cache level's line granularity. The cycle engine consults it on every
//! access; the engine answers with extra cycles (snoop-bus wait plus
//! transaction latency) and bookkeeping (which remote copies to
//! invalidate, whether a miss was a coherence miss or a capacity miss).
//!
//! The directory is an open-addressed hash table with a seeded
//! multiplicative hash, power-of-two capacity and linear probing. Nothing
//! observable depends on table order: lines are looked up by exact key
//! only, never iterated, and per-line state is packed into core bitmasks
//! whose derived outputs (invalidation sets, sharer counts) are read in
//! ascending core order by construction. Determinism therefore does not
//! lean on sorted iteration — the order-independence test replays one
//! trace under several hash seeds and demands identical traffic. Slots
//! are epoch-stamped: [`CoherenceEngine::reset`] bumps the epoch and
//! every slot becomes logically empty, making `Machine::reset` O(1)
//! instead of a directory teardown.
//!
//! The previous `BTreeMap` directory is retained verbatim as
//! [`reference::ReferenceEngine`] for the differential suite.
//!
//! Two simplifications, both deterministic and both documented here
//! because they matter for interpreting counters:
//!
//! * Evictions are silent: a core that loses a line to capacity keeps its
//!   directory state until the next coherence transaction touches the
//!   line. Real S/E evictions are silent too; the model extends this to M
//!   (the writeback is charged lazily, when a remote core next requests
//!   the line).
//! * Invalidations are applied to the other cores' caches using the
//!   *accessing* core's line keys, which is exact whenever the cores
//!   share one address space — the case for every coherence probe (the
//!   false-sharing sweep and the cache-mediated communication model both
//!   traverse a single shared [`crate::machine::SimArray`]).

use serde::{Deserialize, Serialize};

use crate::spec::CoreId;

/// Latencies of the snoop-bus transactions the MESI layer can issue, in
/// core cycles. These are machine parameters — presets set them, the zoo
/// perturbs them, and run manifests record them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherenceSpec {
    /// Cycles to invalidate the remote copies of a line on a store.
    pub invalidate_cycles: f64,
    /// Cycles for the owner of a Modified line to write it back when
    /// another core requests the line.
    pub writeback_cycles: f64,
    /// Cycles for a cache-to-cache transfer (the requester receives the
    /// line from the previous owner instead of from memory).
    pub intervention_cycles: f64,
    /// Cycles for a Shared→Modified upgrade broadcast.
    pub upgrade_cycles: f64,
    /// Cycles each transaction occupies the snoop bus. Concurrent
    /// transactions serialize on this, exactly like memory accesses
    /// serialize on the front-side bus.
    pub bus_occupancy_cycles: f64,
}

impl Default for CoherenceSpec {
    fn default() -> Self {
        Self {
            invalidate_cycles: 12.0,
            writeback_cycles: 40.0,
            intervention_cycles: 25.0,
            upgrade_cycles: 10.0,
            bus_occupancy_cycles: 4.0,
        }
    }
}

impl CoherenceSpec {
    /// Validate the parameters; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("invalidate_cycles", self.invalidate_cycles),
            ("writeback_cycles", self.writeback_cycles),
            ("intervention_cycles", self.intervention_cycles),
            ("upgrade_cycles", self.upgrade_cycles),
            ("bus_occupancy_cycles", self.bus_occupancy_cycles),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("coherence {name} = {v} must be finite and >= 0"));
            }
        }
        Ok(())
    }
}

/// MESI state of one core's copy of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MesiState {
    /// Dirty and exclusive: this core owns the only valid copy.
    Modified,
    /// Clean and exclusive: memory is up to date, no other copies.
    Exclusive,
    /// Clean, possibly replicated in other cores' caches.
    Shared,
    /// No valid copy.
    Invalid,
}

/// Snoop-bus traffic accumulated since construction or the last reset.
///
/// All counters are exact integers so that determinism is checkable
/// bit-for-bit: the acceptance gate for the zoo requires identical
/// traffic across runs and worker counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceTraffic {
    /// Remote copies invalidated by stores.
    pub invalidations: u64,
    /// Modified lines written back on a remote request.
    pub writebacks: u64,
    /// Cache-to-cache transfers (line supplied by the previous owner).
    pub interventions: u64,
    /// Shared→Modified upgrade broadcasts.
    pub upgrades: u64,
    /// Misses on lines this core lost to a remote invalidation — the
    /// coherence share of the §III-B miss decomposition.
    pub coherence_misses: u64,
    /// Misses with no preceding invalidation (capacity/cold misses) on
    /// lines the directory tracks.
    pub capacity_misses: u64,
}

impl CoherenceTraffic {
    /// Total snoop-bus transactions issued.
    pub fn transactions(&self) -> u64 {
        self.writebacks + self.interventions + self.upgrades
    }

    /// Fraction of classified misses that were coherence misses; 0 when
    /// no miss has been classified.
    pub fn coherence_miss_fraction(&self) -> f64 {
        let total = self.coherence_misses + self.capacity_misses;
        if total == 0 {
            0.0
        } else {
            self.coherence_misses as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot of the same
    /// monotone counters (saturating, so a stale baseline cannot wrap).
    pub fn since(&self, earlier: &CoherenceTraffic) -> CoherenceTraffic {
        CoherenceTraffic {
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            interventions: self.interventions.saturating_sub(earlier.interventions),
            upgrades: self.upgrades.saturating_sub(earlier.upgrades),
            coherence_misses: self
                .coherence_misses
                .saturating_sub(earlier.coherence_misses),
            capacity_misses: self.capacity_misses.saturating_sub(earlier.capacity_misses),
        }
    }

    /// Counter-wise sum with another traffic snapshot.
    pub fn plus(&self, other: &CoherenceTraffic) -> CoherenceTraffic {
        CoherenceTraffic {
            invalidations: self.invalidations + other.invalidations,
            writebacks: self.writebacks + other.writebacks,
            interventions: self.interventions + other.interventions,
            upgrades: self.upgrades + other.upgrades,
            coherence_misses: self.coherence_misses + other.coherence_misses,
            capacity_misses: self.capacity_misses + other.capacity_misses,
        }
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == CoherenceTraffic::default()
    }
}

/// What the cycle engine must do after consulting the directory for one
/// access.
#[derive(Debug, Clone)]
pub struct CoherenceOutcome {
    /// Extra cycles this access pays: snoop-bus wait plus transaction
    /// latencies.
    pub extra_cycles: f64,
    /// Remote cores whose cached copies of the line must be removed
    /// (sorted ascending; deterministic).
    pub invalidate_cores: Vec<CoreId>,
    /// Whether a miss on this access was a coherence miss (the line was
    /// invalidated out from under this core).
    pub coherence_miss: bool,
    /// Whether the line was supplied cache-to-cache by the previous
    /// owner (an intervention): the access does not go to memory.
    pub supplied_by_cache: bool,
}

/// Allocation-free sibling of [`CoherenceOutcome`]: the cycle engine's
/// hot path receives the invalidation set through a caller-owned scratch
/// vector instead of a per-access allocation.
#[derive(Debug, Clone, Copy)]
pub struct CoherenceResult {
    /// Extra cycles this access pays.
    pub extra_cycles: f64,
    /// Whether a miss on this access was a coherence miss.
    pub coherence_miss: bool,
    /// Whether the line was supplied cache-to-cache.
    pub supplied_by_cache: bool,
}

/// One open-addressed directory slot. A slot is live iff its `epoch`
/// matches the table's; per-core MESI states are packed into bitmasks
/// (`valid`/`modified`/`exclusive`), which is also what makes remote-copy
/// scans O(1) mask ops instead of per-core loops.
#[derive(Debug, Clone, Copy, Default)]
struct DirSlot {
    key: u64,
    epoch: u64,
    /// Cores holding a non-Invalid copy.
    valid: u64,
    /// Cores holding the line Modified (subset of `valid`).
    modified: u64,
    /// Cores holding the line Exclusive (subset of `valid`).
    exclusive: u64,
    /// Cores whose copy was invalidated and not yet re-fetched (the
    /// coherence-miss classifier).
    invalidated: u64,
}

/// Finalizing mix (splitmix64): full-avalanche, so low bits of the slot
/// index depend on every key bit.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The per-machine MESI directory and snoop bus.
#[derive(Debug, Clone)]
pub struct CoherenceEngine {
    spec: CoherenceSpec,
    num_cores: usize,
    /// Open-addressed line directory: power-of-two capacity, linear
    /// probing, epoch-stamped slots (slots from an older epoch read as
    /// empty, so reset never touches the table).
    slots: Box<[DirSlot]>,
    /// `slots.len() - 1`.
    index_mask: usize,
    /// Live entries in the current epoch.
    len: usize,
    /// Current epoch; starts at 1 so zero-initialized slots are empty.
    epoch: u64,
    /// Hash seed, XORed into keys before mixing.
    hash_seed: u64,
    traffic: CoherenceTraffic,
    /// Cycle at which the snoop bus becomes free.
    snoop_free_at: f64,
}

/// Initial directory capacity (slots). Grows by doubling at 3/4 load.
const INITIAL_DIR_CAPACITY: usize = 1024;

impl CoherenceEngine {
    /// Build an engine for a machine with `num_cores` cores.
    pub fn new(spec: CoherenceSpec, num_cores: usize) -> Self {
        Self::with_hash_seed(spec, num_cores, 0x5EED_C0DE_D1CE_u64)
    }

    /// Build an engine with an explicit directory hash seed. Observable
    /// behavior is seed-independent (the order-independence test relies
    /// on exactly this constructor).
    pub fn with_hash_seed(spec: CoherenceSpec, num_cores: usize, hash_seed: u64) -> Self {
        assert!(
            num_cores <= 64,
            "coherence directory tracks at most 64 cores"
        );
        Self {
            spec,
            num_cores,
            slots: vec![DirSlot::default(); INITIAL_DIR_CAPACITY].into_boxed_slice(),
            index_mask: INITIAL_DIR_CAPACITY - 1,
            len: 0,
            epoch: 1,
            hash_seed,
            traffic: CoherenceTraffic::default(),
            snoop_free_at: 0.0,
        }
    }

    /// The engine's transaction latencies.
    pub fn spec(&self) -> &CoherenceSpec {
        &self.spec
    }

    /// Traffic accumulated so far.
    pub fn traffic(&self) -> CoherenceTraffic {
        self.traffic
    }

    /// Return the accumulated traffic and zero the counters, keeping the
    /// directory state and the snoop-bus clock.
    pub fn take_traffic(&mut self) -> CoherenceTraffic {
        std::mem::take(&mut self.traffic)
    }

    /// Drop all directory state, traffic and the snoop-bus clock.
    ///
    /// O(1): the epoch stamp advances and every slot becomes logically
    /// empty without being touched; capacity is retained for reuse.
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.len = 0;
        self.traffic = CoherenceTraffic::default();
        self.snoop_free_at = 0.0;
    }

    /// Number of lines the directory currently tracks.
    pub fn tracked_lines(&self) -> usize {
        self.len
    }

    #[inline]
    fn slot_index(&self, key: u64) -> usize {
        mix64(key ^ self.hash_seed) as usize & self.index_mask
    }

    /// Find the live slot for `key`, if any.
    #[inline]
    fn find(&self, key: u64) -> Option<&DirSlot> {
        let mut i = self.slot_index(key);
        loop {
            let s = &self.slots[i];
            if s.epoch != self.epoch {
                return None;
            }
            if s.key == key {
                return Some(s);
            }
            i = (i + 1) & self.index_mask;
        }
    }

    /// Find or claim the slot for `key`; returns its index.
    #[inline]
    fn find_or_insert(&mut self, key: u64) -> usize {
        // Keep load below 3/4 so probe chains stay short.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.slot_index(key);
        loop {
            let s = &self.slots[i];
            if s.epoch != self.epoch {
                self.slots[i] = DirSlot {
                    key,
                    epoch: self.epoch,
                    ..DirSlot::default()
                };
                self.len += 1;
                return i;
            }
            if s.key == key {
                return i;
            }
            i = (i + 1) & self.index_mask;
        }
    }

    /// Double the table, re-slotting live entries. Layout after growth is
    /// a pure function of the live set and the seed — deterministic.
    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![DirSlot::default(); new_cap].into_boxed_slice(),
        );
        self.index_mask = new_cap - 1;
        for s in old.iter().filter(|s| s.epoch == self.epoch) {
            let mut i = self.slot_index(s.key);
            while self.slots[i].epoch == self.epoch {
                i = (i + 1) & self.index_mask;
            }
            self.slots[i] = *s;
        }
    }

    /// MESI state `core` holds for `phys_line` (Invalid if untracked).
    pub fn state_of(&self, core: CoreId, phys_line: u64) -> MesiState {
        let bit = 1u64 << core;
        match self.find(phys_line) {
            None => MesiState::Invalid,
            Some(s) if s.valid & bit == 0 => MesiState::Invalid,
            Some(s) if s.modified & bit != 0 => MesiState::Modified,
            Some(s) if s.exclusive & bit != 0 => MesiState::Exclusive,
            Some(_) => MesiState::Shared,
        }
    }

    /// Serialize one transaction on the snoop bus: returns the wait +
    /// occupancy cycles the requester pays, and advances the bus clock.
    #[inline]
    fn bus_transaction(&mut self, now: f64) -> f64 {
        let start = now.max(self.snoop_free_at);
        self.snoop_free_at = start + self.spec.bus_occupancy_cycles;
        (start - now) + self.spec.bus_occupancy_cycles
    }

    /// Record an access by `core` to `phys_line` at virtual time `now`
    /// and advance the MESI state machine.
    ///
    /// `cache_hit` is what the cache model said *before* coherence: it is
    /// used only to classify misses, never to decide transitions (the
    /// directory is authoritative for ownership).
    pub fn access(
        &mut self,
        core: CoreId,
        phys_line: u64,
        write: bool,
        cache_hit: bool,
        now: f64,
    ) -> CoherenceOutcome {
        let mut invalidate_cores = Vec::new();
        let res = self.access_into(
            core,
            phys_line,
            write,
            cache_hit,
            now,
            &mut invalidate_cores,
        );
        CoherenceOutcome {
            extra_cycles: res.extra_cycles,
            invalidate_cores,
            coherence_miss: res.coherence_miss,
            supplied_by_cache: res.supplied_by_cache,
        }
    }

    /// Allocation-free core of [`Self::access`]: the remote cores to
    /// invalidate are appended to `invalidate_out` (cleared first, filled
    /// in ascending core order).
    pub fn access_into(
        &mut self,
        core: CoreId,
        phys_line: u64,
        write: bool,
        cache_hit: bool,
        now: f64,
        invalidate_out: &mut Vec<CoreId>,
    ) -> CoherenceResult {
        invalidate_out.clear();
        let bit = 1u64 << core;
        let si = self.find_or_insert(phys_line);
        let slot = &mut self.slots[si];

        // Classify the miss before mutating anything: a miss on a line
        // the directory saw invalidated out from under this core is a
        // coherence miss; any other tracked miss is capacity/cold.
        let coherence_miss = !cache_hit && slot.invalidated & bit != 0;
        if !cache_hit {
            if coherence_miss {
                self.traffic.coherence_misses += 1;
            } else {
                self.traffic.capacity_misses += 1;
            }
        }
        slot.invalidated &= !bit;

        let remote = slot.valid & !bit;
        let remote_modified = slot.modified & !bit != 0;

        let mut latency = 0.0;
        let mut transactions = 0u32;
        let mut invalidate_mask = 0u64;
        let mut supplied_by_cache = false;

        if write {
            if slot.modified & bit != 0 {
                // Already Modified: silent.
            } else if slot.exclusive & bit != 0 {
                // E→M is silent: no other copy exists.
                slot.exclusive &= !bit;
                slot.modified |= bit;
            } else if slot.valid & bit != 0 {
                // Shared: broadcast an upgrade to every sharer.
                self.traffic.upgrades += 1;
                latency += self.spec.upgrade_cycles;
                transactions += 1;
                if remote != 0 {
                    self.traffic.invalidations += remote.count_ones() as u64;
                    latency += self.spec.invalidate_cycles;
                    invalidate_mask = remote;
                }
                slot.modified |= bit;
            } else {
                // Invalid: read-for-ownership — fetch the line,
                // invalidating every remote copy; a dirty owner writes
                // back and supplies the line cache-to-cache.
                if remote_modified {
                    self.traffic.writebacks += 1;
                    self.traffic.interventions += 1;
                    latency += self.spec.writeback_cycles + self.spec.intervention_cycles;
                    transactions += 1;
                    supplied_by_cache = true;
                }
                if remote != 0 {
                    self.traffic.invalidations += remote.count_ones() as u64;
                    latency += self.spec.invalidate_cycles;
                    transactions += 1;
                    invalidate_mask = remote;
                }
                slot.valid |= bit;
                slot.modified |= bit;
            }
            if invalidate_mask != 0 {
                slot.valid &= !invalidate_mask;
                slot.modified &= !invalidate_mask;
                slot.exclusive &= !invalidate_mask;
                slot.invalidated |= invalidate_mask;
                let mut m = invalidate_mask;
                while m != 0 {
                    let c = m.trailing_zeros() as usize;
                    invalidate_out.push(c);
                    m &= m - 1;
                }
            }
        } else if slot.valid & bit == 0 {
            if remote_modified {
                // The dirty owner writes back and supplies the line;
                // both copies end Shared.
                self.traffic.writebacks += 1;
                self.traffic.interventions += 1;
                latency += self.spec.writeback_cycles + self.spec.intervention_cycles;
                transactions += 1;
                supplied_by_cache = true;
                // Every Modified holder downgrades to Shared.
                slot.modified = 0;
                slot.valid |= bit;
            } else if remote != 0 {
                slot.valid |= bit;
            } else {
                slot.valid |= bit;
                slot.exclusive |= bit;
            }
        }

        let mut extra = latency;
        for _ in 0..transactions {
            extra += self.bus_transaction(now + extra);
        }
        CoherenceResult {
            extra_cycles: extra,
            coherence_miss,
            supplied_by_cache,
        }
    }

    /// Number of cores the directory was built for.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }
}

pub mod reference {
    //! The pre-fast-path coherence engine, retained for differential
    //! testing: a `BTreeMap` directory with one `Vec<MesiState>` per
    //! line. Transitions and counters are the original code, so the
    //! differential suite can demand bit-identical [`CoherenceTraffic`]
    //! and invalidation sets from the hashed engine.

    use super::{CoherenceOutcome, CoherenceSpec, CoherenceTraffic, MesiState};
    use crate::spec::CoreId;
    use std::collections::BTreeMap;

    /// Directory entry: the MESI state each core holds for one line,
    /// plus which cores have lost their copy to an invalidation and not
    /// yet re-accessed the line.
    #[derive(Debug, Clone)]
    struct LineDir {
        states: Vec<MesiState>,
        invalidated: u64,
    }

    impl LineDir {
        fn new(num_cores: usize) -> Self {
            Self {
                states: vec![MesiState::Invalid; num_cores],
                invalidated: 0,
            }
        }
    }

    /// The original `BTreeMap`-directory MESI engine.
    #[derive(Debug, Clone)]
    pub struct ReferenceEngine {
        spec: CoherenceSpec,
        num_cores: usize,
        lines: BTreeMap<u64, LineDir>,
        traffic: CoherenceTraffic,
        snoop_free_at: f64,
    }

    impl ReferenceEngine {
        /// Build an engine for a machine with `num_cores` cores.
        pub fn new(spec: CoherenceSpec, num_cores: usize) -> Self {
            assert!(
                num_cores <= 64,
                "coherence directory tracks at most 64 cores"
            );
            Self {
                spec,
                num_cores,
                lines: BTreeMap::new(),
                traffic: CoherenceTraffic::default(),
                snoop_free_at: 0.0,
            }
        }

        /// Traffic accumulated so far.
        pub fn traffic(&self) -> CoherenceTraffic {
            self.traffic
        }

        /// Return the accumulated traffic and zero the counters.
        pub fn take_traffic(&mut self) -> CoherenceTraffic {
            std::mem::take(&mut self.traffic)
        }

        /// Drop all directory state, traffic and the snoop-bus clock.
        pub fn reset(&mut self) {
            self.lines.clear();
            self.traffic = CoherenceTraffic::default();
            self.snoop_free_at = 0.0;
        }

        /// MESI state `core` holds for `phys_line`.
        pub fn state_of(&self, core: CoreId, phys_line: u64) -> MesiState {
            self.lines
                .get(&phys_line)
                .map_or(MesiState::Invalid, |d| d.states[core])
        }

        fn bus_transaction(&mut self, now: f64) -> f64 {
            let start = now.max(self.snoop_free_at);
            self.snoop_free_at = start + self.spec.bus_occupancy_cycles;
            (start - now) + self.spec.bus_occupancy_cycles
        }

        /// Record an access and advance the MESI state machine (original
        /// per-core-state transition code).
        pub fn access(
            &mut self,
            core: CoreId,
            phys_line: u64,
            write: bool,
            cache_hit: bool,
            now: f64,
        ) -> CoherenceOutcome {
            let num_cores = self.num_cores;
            let dir = self
                .lines
                .entry(phys_line)
                .or_insert_with(|| LineDir::new(num_cores));

            let was_invalidated = dir.invalidated & (1 << core) != 0;
            let coherence_miss = !cache_hit && was_invalidated;
            if !cache_hit {
                if coherence_miss {
                    self.traffic.coherence_misses += 1;
                } else {
                    self.traffic.capacity_misses += 1;
                }
            }
            dir.invalidated &= !(1 << core);

            let my_state = dir.states[core];
            let remote: Vec<CoreId> = (0..num_cores)
                .filter(|&c| c != core && dir.states[c] != MesiState::Invalid)
                .collect();
            let remote_modified = remote.iter().any(|&c| dir.states[c] == MesiState::Modified);

            let mut latency = 0.0;
            let mut transactions = 0u32;
            let mut invalidate_cores = Vec::new();
            let mut supplied_by_cache = false;

            if write {
                match my_state {
                    MesiState::Modified => {}
                    MesiState::Exclusive => {
                        dir.states[core] = MesiState::Modified;
                    }
                    MesiState::Shared => {
                        self.traffic.upgrades += 1;
                        latency += self.spec.upgrade_cycles;
                        transactions += 1;
                        if !remote.is_empty() {
                            self.traffic.invalidations += remote.len() as u64;
                            latency += self.spec.invalidate_cycles;
                            invalidate_cores = remote.clone();
                        }
                        dir.states[core] = MesiState::Modified;
                    }
                    MesiState::Invalid => {
                        if remote_modified {
                            self.traffic.writebacks += 1;
                            self.traffic.interventions += 1;
                            latency += self.spec.writeback_cycles + self.spec.intervention_cycles;
                            transactions += 1;
                            supplied_by_cache = true;
                        }
                        if !remote.is_empty() {
                            self.traffic.invalidations += remote.len() as u64;
                            latency += self.spec.invalidate_cycles;
                            transactions += 1;
                            invalidate_cores = remote.clone();
                        }
                        dir.states[core] = MesiState::Modified;
                    }
                }
                for &c in &invalidate_cores {
                    dir.states[c] = MesiState::Invalid;
                    dir.invalidated |= 1 << c;
                }
            } else {
                match my_state {
                    MesiState::Modified | MesiState::Exclusive | MesiState::Shared => {}
                    MesiState::Invalid => {
                        if remote_modified {
                            self.traffic.writebacks += 1;
                            self.traffic.interventions += 1;
                            latency += self.spec.writeback_cycles + self.spec.intervention_cycles;
                            transactions += 1;
                            supplied_by_cache = true;
                            for c in 0..num_cores {
                                if dir.states[c] == MesiState::Modified {
                                    dir.states[c] = MesiState::Shared;
                                }
                            }
                            dir.states[core] = MesiState::Shared;
                        } else if !remote.is_empty() {
                            dir.states[core] = MesiState::Shared;
                        } else {
                            dir.states[core] = MesiState::Exclusive;
                        }
                    }
                }
            }

            let mut extra = latency;
            for _ in 0..transactions {
                extra += self.bus_transaction(now + extra);
            }
            CoherenceOutcome {
                extra_cycles: extra,
                invalidate_cores,
                coherence_miss,
                supplied_by_cache,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceEngine;
    use super::*;

    fn engine() -> CoherenceEngine {
        CoherenceEngine::new(CoherenceSpec::default(), 4)
    }

    #[test]
    fn default_spec_validates() {
        CoherenceSpec::default().validate().unwrap();
        let bad = CoherenceSpec {
            invalidate_cycles: -1.0,
            ..CoherenceSpec::default()
        };
        assert!(bad.validate().is_err());
        let nan = CoherenceSpec {
            writeback_cycles: f64::NAN,
            ..CoherenceSpec::default()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn first_read_is_exclusive_then_silent_upgrade() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Exclusive);
        let out = e.access(0, 7, true, true, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Modified);
        assert_eq!(out.extra_cycles, 0.0);
        assert_eq!(e.traffic().transactions(), 0);
    }

    #[test]
    fn second_reader_shares() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(1, 7, false, false, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Exclusive);
        assert_eq!(e.state_of(1, 7), MesiState::Shared);
        assert_eq!(e.traffic().transactions(), 0);
    }

    #[test]
    fn write_to_shared_upgrades_and_invalidates() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(1, 7, false, false, 0.0);
        e.access(2, 7, false, false, 0.0);
        // Make core 0 Shared too (it currently is Exclusive only if no
        // one else read; here two others read, but 0 stays E in this
        // simplified model until a transaction downgrades it — write
        // from core 1 must still invalidate 0 and 2).
        let out = e.access(1, 7, true, true, 0.0);
        assert_eq!(e.state_of(1, 7), MesiState::Modified);
        assert_eq!(e.state_of(0, 7), MesiState::Invalid);
        assert_eq!(e.state_of(2, 7), MesiState::Invalid);
        assert_eq!(out.invalidate_cores, vec![0, 2]);
        let t = e.traffic();
        assert_eq!(t.upgrades, 1);
        assert_eq!(t.invalidations, 2);
        assert!(out.extra_cycles > 0.0);
    }

    #[test]
    fn read_of_modified_line_forces_writeback_and_intervention() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(0, 7, true, true, 0.0); // 0 now Modified
        let out = e.access(1, 7, false, false, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Shared);
        assert_eq!(e.state_of(1, 7), MesiState::Shared);
        let t = e.traffic();
        assert_eq!(t.writebacks, 1);
        assert_eq!(t.interventions, 1);
        let spec = CoherenceSpec::default();
        assert!(out.extra_cycles >= spec.writeback_cycles + spec.intervention_cycles);
    }

    #[test]
    fn ping_pong_writes_generate_sustained_traffic() {
        let mut e = engine();
        for round in 0..10 {
            let now = round as f64 * 100.0;
            e.access(0, 7, true, round == 0, now);
            e.access(1, 7, true, false, now + 50.0);
        }
        let t = e.traffic();
        // After the first exchange every write invalidates the other
        // core's Modified copy: writeback + intervention + invalidation.
        assert!(t.invalidations >= 18, "{t:?}");
        assert!(t.writebacks >= 17, "{t:?}");
        assert!(t.coherence_misses > 0, "{t:?}");
    }

    #[test]
    fn miss_classification_splits_coherence_from_capacity() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0); // cold: capacity bucket
        e.access(1, 7, true, false, 0.0); // invalidates 0's copy
        let out = e.access(0, 7, false, false, 0.0); // coherence miss
        assert!(out.coherence_miss);
        let t = e.traffic();
        assert_eq!(t.coherence_misses, 1);
        // Cold misses from cores 0 and 1.
        assert_eq!(t.capacity_misses, 2);
        assert!((t.coherence_miss_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snoop_bus_serializes_transactions() {
        let spec = CoherenceSpec {
            bus_occupancy_cycles: 10.0,
            ..CoherenceSpec::default()
        };
        let mut e = CoherenceEngine::new(spec, 2);
        e.access(0, 1, false, false, 0.0);
        e.access(1, 1, false, false, 0.0);
        // Two upgrades issued back-to-back at the same virtual time: the
        // second must wait for the first's bus occupancy.
        let a = e.access(0, 1, true, true, 100.0);
        let b = e.access(1, 1, true, false, 100.0);
        assert!(b.extra_cycles > a.extra_cycles, "{a:?} vs {b:?}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = engine();
        e.access(0, 7, false, false, 0.0);
        e.access(1, 7, true, false, 0.0);
        assert_ne!(e.traffic(), CoherenceTraffic::default());
        e.reset();
        assert_eq!(e.traffic(), CoherenceTraffic::default());
        assert_eq!(e.state_of(0, 7), MesiState::Invalid);
        assert_eq!(e.tracked_lines(), 0);
        // The epoch-stamped table is reusable after reset: a line from
        // the previous epoch reads as untracked and re-inserts cleanly.
        e.access(0, 7, false, false, 0.0);
        assert_eq!(e.state_of(0, 7), MesiState::Exclusive);
        assert_eq!(e.tracked_lines(), 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = engine();
            for i in 0..200u64 {
                let core = (i % 3) as usize;
                let line = i % 5;
                e.access(core, line, i % 2 == 0, i % 4 == 0, i as f64);
            }
            e.traffic()
        };
        assert_eq!(run(), run());
    }

    /// Observable outputs are independent of the hash seed: the
    /// determinism argument no longer leans on sorted iteration.
    #[test]
    fn traffic_is_hash_seed_independent() {
        let run = |seed: u64| {
            let mut e = CoherenceEngine::with_hash_seed(CoherenceSpec::default(), 8, seed);
            let mut invalidations = Vec::new();
            for i in 0..3000u64 {
                let core = (i % 7) as usize;
                let line = (i * 17) % 101;
                let out = e.access(core, line, i % 2 == 0, i % 4 == 0, i as f64);
                invalidations.push(out.invalidate_cores);
            }
            (e.traffic(), invalidations)
        };
        let base = run(1);
        assert_eq!(base, run(0xDEAD_BEEF));
        assert_eq!(base, run(u64::MAX));
    }

    /// Growth past the initial capacity preserves every line's state.
    #[test]
    fn directory_growth_preserves_state() {
        let mut e = CoherenceEngine::new(CoherenceSpec::default(), 2);
        let lines = 4 * super::INITIAL_DIR_CAPACITY as u64;
        for l in 0..lines {
            e.access(0, l, l % 2 == 0, false, 0.0);
        }
        for l in 0..lines {
            let want = if l % 2 == 0 {
                MesiState::Modified
            } else {
                MesiState::Exclusive
            };
            assert_eq!(e.state_of(0, l), want, "line {l}");
        }
        assert_eq!(e.tracked_lines(), lines as usize);
    }

    /// The hashed engine and the retained BTreeMap engine agree on every
    /// outcome and the final traffic over a seeded random access stream.
    #[test]
    fn differential_against_reference_engine() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD1FF);
        for cores in [1usize, 2, 4, 13, 64] {
            let mut fast = CoherenceEngine::new(CoherenceSpec::default(), cores);
            let mut slow = ReferenceEngine::new(CoherenceSpec::default(), cores);
            let mut now = 0.0f64;
            for _ in 0..5000 {
                let core = rng.gen_range(0..cores);
                let line = rng.gen_range(0..512u64);
                let write = rng.gen_bool(0.5);
                let hit = rng.gen_bool(0.6);
                now += rng.gen_range(0.0..10.0);
                let a = fast.access(core, line, write, hit, now);
                let b = slow.access(core, line, write, hit, now);
                assert_eq!(a.extra_cycles.to_bits(), b.extra_cycles.to_bits());
                assert_eq!(a.invalidate_cores, b.invalidate_cores);
                assert_eq!(a.coherence_miss, b.coherence_miss);
                assert_eq!(a.supplied_by_cache, b.supplied_by_cache);
                for c in 0..cores {
                    assert_eq!(fast.state_of(c, line), slow.state_of(c, line));
                }
            }
            assert_eq!(fast.traffic(), slow.traffic());
        }
    }

    #[test]
    fn traffic_since_and_plus() {
        let a = CoherenceTraffic {
            invalidations: 10,
            writebacks: 5,
            interventions: 4,
            upgrades: 3,
            coherence_misses: 2,
            capacity_misses: 1,
        };
        let b = CoherenceTraffic {
            invalidations: 4,
            writebacks: 5,
            interventions: 1,
            upgrades: 0,
            coherence_misses: 2,
            capacity_misses: 0,
        };
        let d = a.since(&b);
        assert_eq!(d.invalidations, 6);
        assert_eq!(d.writebacks, 0);
        assert_eq!(d.interventions, 3);
        assert!(!d.is_empty());
        assert_eq!(b.plus(&d).invalidations, a.invalidations);
        assert!(CoherenceTraffic::default().is_empty());
        // Saturating: a stale baseline cannot wrap.
        assert_eq!(b.since(&a).invalidations, 0);
    }
}
