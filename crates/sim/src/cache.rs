//! Set-associative LRU cache model.
//!
//! Lines are identified by an opaque 64-bit key that already encodes the
//! address space (for virtually indexed caches) or the physical address (for
//! physically indexed ones); the cache extracts its set index from the key's
//! low bits and keeps per-set LRU order.
//!
//! The production model ([`SetAssocCache`]) stores every way of every set in
//! one flat, contiguous array with a fixed stride of `associativity` slots
//! per set, most-recently-used first within each set's occupied prefix. LRU
//! refresh and fill are in-place rotates over at most `associativity` slots —
//! no per-set heap vectors, no `remove`/`insert` element shifting through
//! `Vec` bookkeeping. Set selection uses a mask when the set count is a
//! power of two (every spec-validated machine cache, and the fully
//! associative TLB with its single set) and falls back to a modulo for
//! arbitrary set counts handed to [`SetAssocCache::new`] directly.
//!
//! The previous `Vec<Vec<u64>>` model is retained verbatim as
//! [`reference::ReferenceCache`]: the differential suite replays identical
//! traces through both and demands bit-identical hits, misses and eviction
//! decisions (the same pattern PR 5 used for the binomial kernels).

/// A set-associative cache with LRU replacement, packed into one flat
/// way array.
///
/// The model is timing-free: it answers *hit or miss* and mutates LRU
/// state; the cycle engine in [`crate::machine`] attaches costs.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// All ways of all sets: set `s` owns `ways[s*assoc .. (s+1)*assoc]`,
    /// with its `occupied[s]` resident lines first, MRU order.
    ways: Box<[u64]>,
    /// Resident-line count per set.
    occupied: Box<[u16]>,
    associativity: usize,
    num_sets: u64,
    /// `num_sets - 1` when the set count is a power of two.
    set_mask: u64,
    /// Whether `set_mask` is usable (power-of-two set count).
    pow2_sets: bool,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache with `num_sets` sets of `associativity` ways.
    pub fn new(num_sets: usize, associativity: usize) -> Self {
        assert!(num_sets > 0, "cache needs at least one set");
        assert!(associativity > 0, "cache needs at least one way");
        assert!(
            associativity <= u16::MAX as usize,
            "associativity too large"
        );
        Self {
            ways: vec![0u64; num_sets * associativity].into_boxed_slice(),
            occupied: vec![0u16; num_sets].into_boxed_slice(),
            associativity,
            num_sets: num_sets as u64,
            set_mask: (num_sets as u64).wrapping_sub(1),
            pow2_sets: num_sets.is_power_of_two(),
            hits: 0,
            misses: 0,
        }
    }

    /// Build a cache from a geometry in bytes.
    ///
    /// Degenerate geometries (a size smaller than one full set, as perturbed
    /// sweeps can produce) clamp to a single set instead of panicking.
    pub fn with_geometry(size: usize, line_size: usize, associativity: usize) -> Self {
        let num_sets = (size / (line_size * associativity)).max(1);
        Self::new(num_sets, associativity)
    }

    /// Set index for a line key.
    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.pow2_sets {
            (line & self.set_mask) as usize
        } else {
            (line % self.num_sets) as usize
        }
    }

    /// Look up `line`; on hit, refresh its LRU position. Does **not**
    /// allocate on miss — callers decide fill policy via [`Self::insert`].
    #[inline]
    pub fn probe(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.associativity;
        let n = self.occupied[set] as usize;
        let ways = &mut self.ways[base..base + n];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            // Move to front (MRU): one in-place rotate over pos+1 slots.
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert `line` as MRU, evicting the LRU line of its set if full.
    /// Returns the evicted line, if any. Inserting a resident line just
    /// refreshes it.
    #[inline]
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        let set = self.set_of(line);
        let base = set * self.associativity;
        let n = self.occupied[set] as usize;
        let ways = &mut self.ways[base..base + self.associativity];
        if let Some(pos) = ways[..n].iter().position(|&l| l == line) {
            ways[..=pos].rotate_right(1);
            return None;
        }
        if n == self.associativity {
            // Full set: the LRU line (last slot) falls out of the rotate.
            let evicted = ways[n - 1];
            ways.rotate_right(1);
            ways[0] = line;
            Some(evicted)
        } else {
            // Shift the occupied prefix right by one; slot 0 becomes MRU.
            ways[..=n].rotate_right(1);
            ways[0] = line;
            self.occupied[set] = (n + 1) as u16;
            None
        }
    }

    /// Insert a line the caller has just proven absent (a failed
    /// [`Self::probe`] with no intervening insert to this set): skips
    /// [`Self::insert`]'s residency re-scan. Returns the evicted line,
    /// if any.
    #[inline]
    pub fn fill(&mut self, line: u64) -> Option<u64> {
        let set = self.set_of(line);
        debug_assert!(
            !self.ways[set * self.associativity..][..self.occupied[set] as usize].contains(&line),
            "fill() of a resident line"
        );
        let base = set * self.associativity;
        let n = self.occupied[set] as usize;
        let ways = &mut self.ways[base..base + self.associativity];
        if n == self.associativity {
            let evicted = ways[n - 1];
            ways.rotate_right(1);
            ways[0] = line;
            Some(evicted)
        } else {
            ways[..=n].rotate_right(1);
            ways[0] = line;
            self.occupied[set] = (n + 1) as u16;
            None
        }
    }

    /// Whether `line` is resident, without touching LRU state or counters.
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.associativity;
        let n = self.occupied[set] as usize;
        self.ways[base..base + n].contains(&line)
    }

    /// Remove `line` if resident (a coherence invalidation). Does not
    /// touch the hit/miss counters: the cost of losing the line shows up
    /// as a later miss, which is what the coherence-miss classifier
    /// counts. Returns whether the line was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.associativity;
        let n = self.occupied[set] as usize;
        let ways = &mut self.ways[base..base + n];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            // Close the gap, preserving LRU order of the survivors.
            ways.copy_within(pos + 1.., pos);
            self.occupied[set] = (n - 1) as u16;
            true
        } else {
            false
        }
    }

    /// Drop every line and reset counters.
    pub fn flush(&mut self) {
        self.occupied.fill(0);
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.occupied.iter().map(|&n| n as usize).sum()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets as usize * self.associativity
    }

    /// Number of ways.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets as usize
    }

    /// `(hits, misses)` since construction or the last flush.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit fraction since construction or the last flush; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

pub mod reference {
    //! The pre-fast-path cache model, retained for differential testing.
    //!
    //! This is the original `SetAssocCache`: one heap `Vec` per set,
    //! modulo set selection, LRU maintained by `Vec::remove` +
    //! `Vec::insert`. Its API mirrors the packed model exactly so the
    //! differential suite (and [`crate::reference::ReferenceMachine`])
    //! can drive both with the same code.

    /// A set-associative LRU cache backed by one `Vec` per set.
    #[derive(Debug, Clone)]
    pub struct ReferenceCache {
        /// `sets[s]` holds the line keys resident in set `s`, most
        /// recently used first.
        sets: Vec<Vec<u64>>,
        associativity: usize,
        num_sets: u64,
        hits: u64,
        misses: u64,
    }

    impl ReferenceCache {
        /// Build a cache with `num_sets` sets of `associativity` ways.
        pub fn new(num_sets: usize, associativity: usize) -> Self {
            assert!(num_sets > 0, "cache needs at least one set");
            assert!(associativity > 0, "cache needs at least one way");
            Self {
                sets: vec![Vec::with_capacity(associativity); num_sets],
                associativity,
                num_sets: num_sets as u64,
                hits: 0,
                misses: 0,
            }
        }

        /// Build a cache from a geometry in bytes (clamped to ≥ 1 set,
        /// matching the packed model).
        pub fn with_geometry(size: usize, line_size: usize, associativity: usize) -> Self {
            let num_sets = (size / (line_size * associativity)).max(1);
            Self::new(num_sets, associativity)
        }

        /// Set index for a line key.
        #[inline]
        fn set_of(&self, line: u64) -> usize {
            (line % self.num_sets) as usize
        }

        /// Look up `line`; on hit, refresh its LRU position.
        #[inline]
        pub fn probe(&mut self, line: u64) -> bool {
            let set = self.set_of(line);
            let ways = &mut self.sets[set];
            if let Some(pos) = ways.iter().position(|&l| l == line) {
                let l = ways.remove(pos);
                ways.insert(0, l);
                self.hits += 1;
                true
            } else {
                self.misses += 1;
                false
            }
        }

        /// Insert `line` as MRU, evicting the LRU line of its set if
        /// full. Returns the evicted line, if any.
        #[inline]
        pub fn insert(&mut self, line: u64) -> Option<u64> {
            let set = self.set_of(line);
            let ways = &mut self.sets[set];
            if let Some(pos) = ways.iter().position(|&l| l == line) {
                let l = ways.remove(pos);
                ways.insert(0, l);
                return None;
            }
            let evicted = if ways.len() == self.associativity {
                ways.pop()
            } else {
                None
            };
            ways.insert(0, line);
            evicted
        }

        /// Whether `line` is resident, without touching LRU state.
        pub fn contains(&self, line: u64) -> bool {
            self.sets[self.set_of(line)].contains(&line)
        }

        /// Remove `line` if resident; returns whether it was present.
        pub fn invalidate(&mut self, line: u64) -> bool {
            let set = self.set_of(line);
            let ways = &mut self.sets[set];
            if let Some(pos) = ways.iter().position(|&l| l == line) {
                ways.remove(pos);
                true
            } else {
                false
            }
        }

        /// Drop every line and reset counters.
        pub fn flush(&mut self) {
            for s in &mut self.sets {
                s.clear();
            }
            self.hits = 0;
            self.misses = 0;
        }

        /// Number of resident lines.
        pub fn resident_lines(&self) -> usize {
            self.sets.iter().map(Vec::len).sum()
        }

        /// Total line capacity.
        pub fn capacity_lines(&self) -> usize {
            self.sets.len() * self.associativity
        }

        /// Number of ways.
        pub fn associativity(&self) -> usize {
            self.associativity
        }

        /// Number of sets.
        pub fn num_sets(&self) -> usize {
            self.sets.len()
        }

        /// `(hits, misses)` since construction or the last flush.
        pub fn stats(&self) -> (u64, u64) {
            (self.hits, self.misses)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceCache;
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.probe(7));
        c.insert(7);
        assert!(c.probe(7));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn geometry_constructor() {
        let c = SetAssocCache::with_geometry(32 * 1024, 64, 8);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.capacity_lines(), 512);
        assert_eq!(c.associativity(), 8);
    }

    #[test]
    fn degenerate_geometry_clamps_to_one_set() {
        // Smaller than one full set: 4 KB with 256 B lines at 32 ways
        // yields 4096 / (256*32) = 0 sets before clamping.
        let c = SetAssocCache::with_geometry(4 * 1024, 256, 32);
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.capacity_lines(), 32);
        let r = ReferenceCache::with_geometry(4 * 1024, 256, 32);
        assert_eq!(r.num_sets(), 1);

        // Exactly one set survives undisturbed.
        let c = SetAssocCache::with_geometry(256 * 32, 256, 32);
        assert_eq!(c.num_sets(), 1);

        // Huge lines: 1 KB cache with 4 KB sector lines.
        let mut c = SetAssocCache::with_geometry(1024, 4096, 2);
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), None);
        assert_eq!(c.insert(3), Some(1));
    }

    #[test]
    fn non_power_of_two_sets_still_map_by_modulo() {
        let mut c = SetAssocCache::new(3, 1);
        for line in 0..3u64 {
            c.insert(line);
        }
        assert_eq!(c.resident_lines(), 3);
        // Line 3 aliases set 0 (3 % 3) and evicts line 0.
        assert_eq!(c.insert(3), Some(0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(10);
        c.insert(20);
        assert!(c.probe(10)); // 10 now MRU, 20 LRU
        let evicted = c.insert(30);
        assert_eq!(evicted, Some(20));
        assert!(c.contains(10));
        assert!(c.contains(30));
        assert!(!c.contains(20));
    }

    #[test]
    fn insert_resident_refreshes_without_evicting() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None); // refresh, 2 becomes LRU
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = SetAssocCache::new(4, 1);
        for line in 0..4u64 {
            c.insert(line);
        }
        assert_eq!(c.resident_lines(), 4);
        // A fifth line aliases set 0 and evicts line 0.
        assert_eq!(c.insert(4), Some(0));
    }

    #[test]
    fn cyclic_thrash_beyond_capacity() {
        // Cyclic LRU access over capacity+1 lines in one set misses forever —
        // the behavior that makes overfull page sets miss in the paper's
        // probabilistic model.
        let sets = 1usize;
        let assoc = 4usize;
        let mut c = SetAssocCache::new(sets, assoc);
        let lines: Vec<u64> = (0..(assoc as u64 + 1)).map(|i| i * sets as u64).collect();
        // Warm-up round.
        for &l in &lines {
            c.probe(l);
            c.insert(l);
        }
        c.flush_counters();
        for _ in 0..3 {
            for &l in &lines {
                let hit = c.probe(l);
                assert!(!hit, "line {l} unexpectedly hit");
                c.insert(l);
            }
        }
    }

    #[test]
    fn within_capacity_always_hits_after_warmup() {
        let mut c = SetAssocCache::new(2, 2);
        let lines = [0u64, 1, 2, 3]; // exactly fills both sets
        for &l in &lines {
            c.probe(l);
            c.insert(l);
        }
        for _ in 0..3 {
            for &l in &lines {
                assert!(c.probe(l));
            }
        }
    }

    #[test]
    fn invalidate_removes_without_counting() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(5);
        assert!(c.invalidate(5));
        assert!(!c.contains(5));
        assert!(!c.invalidate(5));
        // Counters untouched by invalidation itself.
        assert_eq!(c.stats(), (0, 0));
        // The freed way is usable again.
        c.insert(5);
        assert!(c.probe(5));
    }

    #[test]
    fn invalidate_preserves_lru_order_of_survivors() {
        let mut c = SetAssocCache::new(1, 4);
        for l in [1u64, 2, 3, 4] {
            c.insert(l);
        }
        // MRU..LRU = 4 3 2 1; drop 3, then fill two more: 1 must go first.
        assert!(c.invalidate(3));
        assert_eq!(c.insert(5), None); // set now 5 4 2 1
        assert_eq!(c.insert(6), Some(1));
        assert_eq!(c.insert(7), Some(2));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(1);
        c.probe(1);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_tracks_probes() {
        let mut c = SetAssocCache::new(1, 1);
        c.probe(5); // miss
        c.insert(5);
        c.probe(5); // hit
        c.probe(5); // hit
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    /// `fill` after a failed probe behaves exactly like `insert` — same
    /// eviction decisions, same final state.
    #[test]
    fn fill_matches_insert_for_absent_lines() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xF111);
        let mut a = SetAssocCache::new(8, 4);
        let mut b = SetAssocCache::new(8, 4);
        for _ in 0..2000 {
            let line = rng.gen_range(0..96u64);
            let ha = a.probe(line);
            let hb = b.probe(line);
            assert_eq!(ha, hb);
            if !ha {
                assert_eq!(a.fill(line), b.insert(line), "line {line}");
            }
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.resident_lines(), b.resident_lines());
        for line in 0..96u64 {
            assert_eq!(a.contains(line), b.contains(line));
        }
    }

    /// Seeded random op streams through the packed and reference models
    /// agree on every probe result, every eviction decision and the final
    /// counters — the cache-level differential gate.
    #[test]
    fn differential_random_ops_match_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xCAFE);
        for (sets, assoc) in [(1usize, 1usize), (1, 4), (4, 2), (8, 8), (3, 2), (64, 12)] {
            let mut fast = SetAssocCache::new(sets, assoc);
            let mut slow = ReferenceCache::new(sets, assoc);
            for _ in 0..4000 {
                let line = rng.gen_range(0..(sets as u64 * assoc as u64 * 3));
                match rng.gen_range(0..4) {
                    0 => assert_eq!(fast.probe(line), slow.probe(line)),
                    1 => assert_eq!(fast.insert(line), slow.insert(line), "line {line}"),
                    2 => assert_eq!(fast.invalidate(line), slow.invalidate(line)),
                    _ => assert_eq!(fast.contains(line), slow.contains(line)),
                }
            }
            assert_eq!(fast.stats(), slow.stats());
            assert_eq!(fast.resident_lines(), slow.resident_lines());
        }
    }

    impl SetAssocCache {
        fn flush_counters(&mut self) {
            self.hits = 0;
            self.misses = 0;
        }
    }
}
