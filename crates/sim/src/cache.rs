//! Set-associative LRU cache model.
//!
//! Lines are identified by an opaque 64-bit key that already encodes the
//! address space (for virtually indexed caches) or the physical address (for
//! physically indexed ones); the cache extracts its set index from the key's
//! low bits and keeps per-set LRU order.

/// A set-associative cache with LRU replacement.
///
/// The model is timing-free: it answers *hit or miss* and mutates LRU
/// state; the cycle engine in [`crate::machine`] attaches costs.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets[s]` holds the line keys resident in set `s`, most recently
    /// used first.
    sets: Vec<Vec<u64>>,
    associativity: usize,
    num_sets: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache with `num_sets` sets of `associativity` ways.
    pub fn new(num_sets: usize, associativity: usize) -> Self {
        assert!(num_sets > 0, "cache needs at least one set");
        assert!(associativity > 0, "cache needs at least one way");
        Self {
            sets: vec![Vec::with_capacity(associativity); num_sets],
            associativity,
            num_sets: num_sets as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Build a cache from a geometry in bytes.
    pub fn with_geometry(size: usize, line_size: usize, associativity: usize) -> Self {
        let num_sets = size / (line_size * associativity);
        Self::new(num_sets, associativity)
    }

    /// Set index for a line key.
    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.num_sets) as usize
    }

    /// Look up `line`; on hit, refresh its LRU position. Does **not**
    /// allocate on miss — callers decide fill policy via [`Self::insert`].
    #[inline]
    pub fn probe(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            // Move to front (MRU).
            let l = ways.remove(pos);
            ways.insert(0, l);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert `line` as MRU, evicting the LRU line of its set if full.
    /// Returns the evicted line, if any. Inserting a resident line just
    /// refreshes it.
    #[inline]
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            return None;
        }
        let evicted = if ways.len() == self.associativity {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, line);
        evicted
    }

    /// Whether `line` is resident, without touching LRU state or counters.
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Remove `line` if resident (a coherence invalidation). Does not
    /// touch the hit/miss counters: the cost of losing the line shows up
    /// as a later miss, which is what the coherence-miss classifier
    /// counts. Returns whether the line was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drop every line and reset counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.associativity
    }

    /// Number of ways.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// `(hits, misses)` since construction or the last flush.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit fraction since construction or the last flush; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.probe(7));
        c.insert(7);
        assert!(c.probe(7));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn geometry_constructor() {
        let c = SetAssocCache::with_geometry(32 * 1024, 64, 8);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.capacity_lines(), 512);
        assert_eq!(c.associativity(), 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(10);
        c.insert(20);
        assert!(c.probe(10)); // 10 now MRU, 20 LRU
        let evicted = c.insert(30);
        assert_eq!(evicted, Some(20));
        assert!(c.contains(10));
        assert!(c.contains(30));
        assert!(!c.contains(20));
    }

    #[test]
    fn insert_resident_refreshes_without_evicting() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None); // refresh, 2 becomes LRU
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = SetAssocCache::new(4, 1);
        for line in 0..4u64 {
            c.insert(line);
        }
        assert_eq!(c.resident_lines(), 4);
        // A fifth line aliases set 0 and evicts line 0.
        assert_eq!(c.insert(4), Some(0));
    }

    #[test]
    fn cyclic_thrash_beyond_capacity() {
        // Cyclic LRU access over capacity+1 lines in one set misses forever —
        // the behavior that makes overfull page sets miss in the paper's
        // probabilistic model.
        let sets = 1usize;
        let assoc = 4usize;
        let mut c = SetAssocCache::new(sets, assoc);
        let lines: Vec<u64> = (0..(assoc as u64 + 1)).map(|i| i * sets as u64).collect();
        // Warm-up round.
        for &l in &lines {
            c.probe(l);
            c.insert(l);
        }
        c.flush_counters();
        for _ in 0..3 {
            for &l in &lines {
                let hit = c.probe(l);
                assert!(!hit, "line {l} unexpectedly hit");
                c.insert(l);
            }
        }
    }

    #[test]
    fn within_capacity_always_hits_after_warmup() {
        let mut c = SetAssocCache::new(2, 2);
        let lines = [0u64, 1, 2, 3]; // exactly fills both sets
        for &l in &lines {
            c.probe(l);
            c.insert(l);
        }
        for _ in 0..3 {
            for &l in &lines {
                assert!(c.probe(l));
            }
        }
    }

    #[test]
    fn invalidate_removes_without_counting() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(5);
        assert!(c.invalidate(5));
        assert!(!c.contains(5));
        assert!(!c.invalidate(5));
        // Counters untouched by invalidation itself.
        assert_eq!(c.stats(), (0, 0));
        // The freed way is usable again.
        c.insert(5);
        assert!(c.probe(5));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(1);
        c.probe(1);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_tracks_probes() {
        let mut c = SetAssocCache::new(1, 1);
        c.probe(5); // miss
        c.insert(5);
        c.probe(5); // hit
        c.probe(5); // hit
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    impl SetAssocCache {
        fn flush_counters(&mut self) {
            self.hits = 0;
            self.misses = 0;
        }
    }
}
