//! Machine specifications.
//!
//! A [`MachineSpec`] is the ground truth the Servet benchmarks must recover:
//! cache sizes and sharing topology, memory resources and their capacities.
//! The integration tests assert that what the suite *measures* on a
//! simulated machine matches what the spec *declares*.

use serde::{Deserialize, Serialize};

use crate::coherence::CoherenceSpec;

/// Index of a logical core as numbered by the (simulated) OS.
pub type CoreId = usize;

/// How a cache level is indexed.
///
/// L1 caches are typically virtually indexed; lower levels are physically
/// indexed (Hennessy & Patterson, cited by the paper in §III-A). Physical
/// indexing combined with random page-frame allocation is what smears the
/// miss-rate transition and forces the probabilistic size algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Indexing {
    /// Set index taken from the virtual address.
    Virtual,
    /// Set index taken from the physical address.
    Physical,
}

/// One cache level of the machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelSpec {
    /// 1-based level number (1 = closest to the core).
    pub level: u8,
    /// Capacity in bytes of one cache instance.
    pub size: usize,
    /// Line size in bytes.
    pub line_size: usize,
    /// Number of ways.
    pub associativity: usize,
    /// Virtual or physical indexing.
    pub indexing: Indexing,
    /// Groups of cores sharing one physical cache instance. The groups must
    /// partition all cores; a private cache has one singleton group per core.
    pub sharing: Vec<Vec<CoreId>>,
    /// Cost in cycles of an access that hits at this level.
    pub hit_cycles: f64,
}

impl CacheLevelSpec {
    /// Number of sets in one instance.
    pub fn num_sets(&self) -> usize {
        self.size / (self.line_size * self.associativity)
    }

    /// Whether this level is shared by more than one core.
    pub fn is_shared(&self) -> bool {
        self.sharing.iter().any(|g| g.len() > 1)
    }

    /// The group of cores sharing the instance that serves `core`.
    pub fn sharing_group(&self, core: CoreId) -> &[CoreId] {
        self.sharing
            .iter()
            .find(|g| g.contains(&core))
            .map(|g| g.as_slice())
            .expect("core not covered by sharing groups")
    }

    /// Whether `a` and `b` are served by the same cache instance.
    pub fn shares(&self, a: CoreId, b: CoreId) -> bool {
        self.sharing_group(a).contains(&b)
    }
}

/// A shared memory-path resource (front-side bus, cell controller, memory
/// controller) with a streaming capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemResource {
    /// Human-readable name ("fsb", "bus0", "cell1", ...).
    pub name: String,
    /// Aggregate streaming capacity in GB/s.
    pub capacity_gbs: f64,
    /// Cores whose memory traffic crosses this resource.
    pub cores: Vec<CoreId>,
}

/// The memory system below the last cache level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Cycles for a load that misses every cache level (unloaded latency).
    pub latency_cycles: f64,
    /// Maximum streaming bandwidth of a single core in GB/s (what STREAM
    /// measures with one thread).
    pub core_stream_gbs: f64,
    /// Shared resources; listed innermost-first (the bus a core sits on
    /// before the controller it reaches through it).
    pub resources: Vec<MemResource>,
}

/// A data TLB: a fully associative LRU translation cache.
///
/// None of the paper's benchmarks measure the TLB, and its machines'
/// TLB reach (hundreds of pages) keeps it out of the measured ranges'
/// way, so the paper presets leave this `None`. The TLB-entries micro
/// probe (an extension, after Saavedra & Smith's original methodology,
/// the paper's ref. \[15\]) uses machines that set it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlbSpec {
    /// Number of entries.
    pub entries: usize,
    /// Cycles added to an access whose page translation misses.
    pub miss_cycles: f64,
}

/// Page-frame allocation policy of the simulated OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageAllocPolicy {
    /// Frames drawn uniformly at random from a large physical memory —
    /// Linux-like, no page coloring. This is the hard case for cache-size
    /// detection and the default in all paper presets.
    Random,
    /// Page coloring: frame color matches virtual-page color, so physically
    /// indexed caches behave like virtually indexed ones.
    Colored,
    /// Virtually contiguous memory is physically contiguous (superpages),
    /// the non-portable workaround of Yotov et al. the paper improves on.
    Contiguous,
}

/// Full description of a simulated machine (one shared-memory node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine name ("dunnington", ...).
    pub name: String,
    /// Core clock in GHz; converts cycles to wall time.
    pub clock_ghz: f64,
    /// Number of logical cores.
    pub num_cores: usize,
    /// OS page size in bytes.
    pub page_size: usize,
    /// Cache levels ordered from L1 outward.
    pub caches: Vec<CacheLevelSpec>,
    /// Memory system parameters.
    pub memory: MemorySpec,
    /// OS page-frame allocation policy.
    pub page_alloc: PageAllocPolicy,
    /// Largest stride in bytes the hardware prefetcher covers (0 disables
    /// prefetching). The paper assumes "up to 256 or 512 bytes".
    pub prefetch_max_stride: usize,
    /// Optional data TLB (see [`TlbSpec`]).
    #[serde(default)]
    pub tlb: Option<TlbSpec>,
    /// Optional MESI coherence layer: snoop-bus transaction latencies.
    /// `None` disables coherence modeling entirely (the pre-coherence
    /// behavior); machines with it set still time read-only workloads
    /// identically, since clean sharing issues no transactions.
    #[serde(default)]
    pub coherence: Option<CoherenceSpec>,
}

impl MachineSpec {
    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("machine has no cores".into());
        }
        if !self.page_size.is_power_of_two() {
            return Err(format!("page size {} not a power of two", self.page_size));
        }
        let mut prev_size = 0usize;
        for c in &self.caches {
            if c.line_size == 0 || !c.line_size.is_power_of_two() {
                return Err(format!("L{} line size {} invalid", c.level, c.line_size));
            }
            if c.associativity == 0 {
                return Err(format!("L{} associativity is zero", c.level));
            }
            if c.size % (c.line_size * c.associativity) != 0 {
                return Err(format!(
                    "L{} size {} not divisible by line*assoc",
                    c.level, c.size
                ));
            }
            if !c.num_sets().is_power_of_two() {
                return Err(format!(
                    "L{} set count {} not a power of two",
                    c.level,
                    c.num_sets()
                ));
            }
            if c.size < prev_size {
                return Err(format!("L{} smaller than the level above it", c.level));
            }
            prev_size = c.size;
            // Sharing groups must partition all cores.
            let mut seen = vec![false; self.num_cores];
            for g in &c.sharing {
                for &core in g {
                    if core >= self.num_cores {
                        return Err(format!("L{} sharing group references core {core}", c.level));
                    }
                    if seen[core] {
                        return Err(format!("L{} core {core} in two sharing groups", c.level));
                    }
                    seen[core] = true;
                }
            }
            if seen.iter().any(|&s| !s) {
                return Err(format!(
                    "L{} sharing groups do not cover all cores",
                    c.level
                ));
            }
            if c.indexing == Indexing::Virtual && c.is_shared() {
                return Err(format!(
                    "L{} is virtually indexed but shared across cores",
                    c.level
                ));
            }
        }
        if let Some(tlb) = &self.tlb {
            if tlb.entries == 0 {
                return Err("TLB with zero entries".into());
            }
        }
        if let Some(coherence) = &self.coherence {
            coherence.validate()?;
            if self.num_cores > 64 {
                return Err(format!(
                    "coherence directory supports at most 64 cores, machine has {}",
                    self.num_cores
                ));
            }
        }
        for r in &self.memory.resources {
            if r.capacity_gbs <= 0.0 {
                return Err(format!("resource {} has non-positive capacity", r.name));
            }
            for &core in &r.cores {
                if core >= self.num_cores {
                    return Err(format!("resource {} references core {core}", r.name));
                }
            }
        }
        Ok(())
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.caches.len()
    }

    /// Size in bytes of level `level` (1-based).
    pub fn cache_size(&self, level: u8) -> Option<usize> {
        self.caches
            .iter()
            .find(|c| c.level == level)
            .map(|c| c.size)
    }

    /// Ground-truth list of core pairs sharing cache level `level`
    /// (1-based), sorted — what the Fig. 5 benchmark should discover.
    pub fn sharing_pairs(&self, level: u8) -> Vec<(CoreId, CoreId)> {
        let Some(c) = self.caches.iter().find(|c| c.level == level) else {
            return Vec::new();
        };
        let mut pairs = Vec::new();
        for g in &c.sharing {
            for i in 0..g.len() {
                for j in i + 1..g.len() {
                    let (a, b) = (g[i].min(g[j]), g[i].max(g[j]));
                    pairs.push((a, b));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// All unordered core pairs of the machine.
    pub fn all_pairs(&self) -> Vec<(CoreId, CoreId)> {
        let mut out = Vec::new();
        for a in 0..self.num_cores {
            for b in a + 1..self.num_cores {
                out.push((a, b));
            }
        }
        out
    }

    /// Convert a cycle count to seconds at this machine's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn presets_validate() {
        for spec in [
            presets::dunnington(),
            presets::finis_terrae_node(),
            presets::dempsey(),
            presets::athlon3200(),
            presets::tiny_smp(),
            presets::tiny_shared_l2(),
        ] {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn dunnington_ground_truth() {
        let d = presets::dunnington();
        assert_eq!(d.num_cores, 24);
        assert_eq!(d.cache_size(1), Some(32 * crate::KB));
        assert_eq!(d.cache_size(2), Some(3 * crate::MB));
        assert_eq!(d.cache_size(3), Some(12 * crate::MB));
        // Paper Fig. 8(a): core 0 shares L2 with core 12, L3 with
        // {0,1,2,12,13,14}.
        let l2 = &d.caches[1];
        assert!(l2.shares(0, 12));
        assert!(!l2.shares(0, 1));
        let l3 = &d.caches[2];
        for c in [1, 2, 12, 13, 14] {
            assert!(l3.shares(0, c), "L3 should pair 0 with {c}");
        }
        assert!(!l3.shares(0, 3));
        assert_eq!(l3.sharing_group(0).len(), 6);
    }

    #[test]
    fn finis_terrae_all_private() {
        let ft = presets::finis_terrae_node();
        assert_eq!(ft.num_cores, 16);
        for c in &ft.caches {
            assert!(!c.is_shared(), "L{} should be private", c.level);
            assert_eq!(c.sharing.len(), 16);
        }
        assert_eq!(ft.cache_size(1), Some(16 * crate::KB));
        assert_eq!(ft.cache_size(2), Some(256 * crate::KB));
        assert_eq!(ft.cache_size(3), Some(9 * crate::MB));
    }

    #[test]
    fn sharing_pairs_ground_truth() {
        let d = presets::dunnington();
        let l2 = d.sharing_pairs(2);
        assert_eq!(l2.len(), 12); // 12 pairs of cores sharing an L2
        assert!(l2.contains(&(0, 12)));
        let l3 = d.sharing_pairs(3);
        assert_eq!(l3.len(), 4 * 15); // C(6,2) per processor * 4
        let l1 = d.sharing_pairs(1);
        assert!(l1.is_empty());
        assert!(d.sharing_pairs(9).is_empty());
    }

    #[test]
    fn all_pairs_count() {
        let d = presets::dunnington();
        assert_eq!(d.all_pairs().len(), 24 * 23 / 2);
    }

    #[test]
    fn validation_rejects_overlapping_groups() {
        let mut spec = presets::tiny_smp();
        spec.caches[0].sharing = vec![vec![0, 1], vec![1]];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_uncovered_cores() {
        let mut spec = presets::tiny_smp();
        spec.caches[0].sharing = vec![vec![0]];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_shared_virtual_cache() {
        let mut spec = presets::tiny_shared_l2();
        spec.caches[1].indexing = Indexing::Virtual;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut spec = presets::tiny_smp();
        spec.caches[0].size = 1000; // not divisible by line*assoc
        assert!(spec.validate().is_err());
        let mut spec = presets::tiny_smp();
        spec.caches[0].associativity = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn cycles_to_seconds() {
        let d = presets::dunnington();
        let s = d.cycles_to_seconds(2.4e9);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_coherence() {
        let mut spec = presets::tiny_smp();
        let mut c = spec.coherence.expect("preset has coherence");
        c.upgrade_cycles = f64::INFINITY;
        spec.coherence = Some(c);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn every_preset_has_coherence_parameters() {
        for spec in [
            presets::dunnington(),
            presets::finis_terrae_node(),
            presets::dempsey(),
            presets::athlon3200(),
            presets::tiny_smp(),
            presets::tiny_shared_l2(),
            presets::tiny_numa(),
        ] {
            assert!(spec.coherence.is_some(), "{} lacks coherence", spec.name);
        }
    }

    #[test]
    fn spec_serde_round_trip() {
        let d = presets::dunnington();
        let json = serde_json::to_string(&d).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
