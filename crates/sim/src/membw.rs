//! Streaming memory bandwidth model with max-min fair sharing.
//!
//! The memory-overhead benchmark (paper §III-C) measures STREAM-like copy
//! bandwidth for an isolated core and for concurrent groups. What governs the
//! shape of Fig. 9 is *capacity sharing*: cores on the same bus split the bus,
//! cores in the same cell split the cell controller, and a core never exceeds
//! its own load/store throughput. This module computes the steady-state
//! allocation by progressive filling (max-min fairness): every active flow is
//! grown at the same rate until some resource saturates, flows through that
//! resource are frozen, and the rest keep growing.

use crate::spec::{CoreId, MemorySpec};

/// Max-min fair allocation of streaming bandwidth.
///
/// `active` lists the flows (cores concurrently streaming); `per_core_cap` is
/// each flow's intrinsic maximum; `resources` are `(capacity, member cores)`
/// constraints. Returns the bandwidth of each flow, in `active` order.
///
/// Duplicate cores in `active` are allowed and are treated as separate flows
/// on the same core's resources (the per-core cap then applies to each flow
/// individually, which benchmark callers never rely on).
pub fn maxmin_fair(
    active: &[CoreId],
    per_core_cap: f64,
    resources: &[(f64, Vec<CoreId>)],
) -> Vec<f64> {
    let n = active.len();
    let mut rate = vec![0.0f64; n];
    let mut fixed = vec![false; n];
    // Flows traversing each resource.
    let members: Vec<Vec<usize>> = resources
        .iter()
        .map(|(_, cores)| (0..n).filter(|&i| cores.contains(&active[i])).collect())
        .collect();
    loop {
        let unfixed: Vec<usize> = (0..n).filter(|&i| !fixed[i]).collect();
        if unfixed.is_empty() {
            break;
        }
        // Largest equal increment every unfixed flow can take.
        let mut delta = unfixed
            .iter()
            .map(|&i| per_core_cap - rate[i])
            .fold(f64::INFINITY, f64::min);
        for (ri, (cap, _)) in resources.iter().enumerate() {
            let used: f64 = members[ri].iter().map(|&i| rate[i]).sum();
            let unfixed_here = members[ri].iter().filter(|&&i| !fixed[i]).count();
            if unfixed_here > 0 {
                delta = delta.min((cap - used) / unfixed_here as f64);
            }
        }
        let delta = delta.max(0.0);
        for &i in &unfixed {
            rate[i] += delta;
        }
        // Freeze flows that hit their own cap or sit on a saturated resource.
        let mut froze = false;
        for &i in &unfixed {
            if per_core_cap - rate[i] <= 1e-12 {
                fixed[i] = true;
                froze = true;
            }
        }
        for (ri, (cap, _)) in resources.iter().enumerate() {
            let used: f64 = members[ri].iter().map(|&i| rate[i]).sum();
            if cap - used <= 1e-9 {
                for &i in &members[ri] {
                    if !fixed[i] {
                        fixed[i] = true;
                        froze = true;
                    }
                }
            }
        }
        if !froze {
            // No constraint binds (e.g. zero active flows on every
            // resource): everyone is at the per-core cap already.
            break;
        }
    }
    rate
}

/// The memory system of one machine, ready to answer bandwidth queries.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    per_core_cap: f64,
    resources: Vec<(f64, Vec<CoreId>)>,
}

impl MemorySystem {
    /// Build from a machine's memory spec.
    pub fn new(spec: &MemorySpec) -> Self {
        Self {
            per_core_cap: spec.core_stream_gbs,
            resources: spec
                .resources
                .iter()
                .map(|r| (r.capacity_gbs, r.cores.clone()))
                .collect(),
        }
    }

    /// Bandwidth (GB/s) of each core in `active` when all stream
    /// concurrently.
    pub fn bandwidth(&self, active: &[CoreId]) -> Vec<f64> {
        maxmin_fair(active, self.per_core_cap, &self.resources)
    }

    /// Bandwidth of a single isolated core — the benchmark's reference
    /// value (`ref` in paper Fig. 6).
    pub fn reference(&self, core: CoreId) -> f64 {
        self.bandwidth(&[core])[0]
    }

    /// The intrinsic single-core streaming cap.
    pub fn per_core_cap(&self) -> f64 {
        self.per_core_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_flow_gets_min_of_caps() {
        let r = maxmin_fair(&[0], 4.0, &[(6.4, vec![0, 1])]);
        assert!(close(r[0], 4.0));
        let r = maxmin_fair(&[0], 4.0, &[(3.0, vec![0, 1])]);
        assert!(close(r[0], 3.0));
    }

    #[test]
    fn two_flows_split_a_bus() {
        let r = maxmin_fair(&[0, 1], 4.0, &[(6.4, vec![0, 1])]);
        assert!(close(r[0], 3.2) && close(r[1], 3.2));
    }

    #[test]
    fn no_resources_means_core_cap() {
        let r = maxmin_fair(&[0, 1, 2], 4.0, &[]);
        assert!(r.iter().all(|&x| close(x, 4.0)));
    }

    #[test]
    fn empty_active_is_empty() {
        assert!(maxmin_fair(&[], 4.0, &[(1.0, vec![0])]).is_empty());
    }

    #[test]
    fn conservation_on_saturated_resource() {
        let r = maxmin_fair(&[0, 1, 2, 3], 4.0, &[(6.0, vec![0, 1, 2, 3])]);
        let total: f64 = r.iter().sum();
        assert!(close(total, 6.0), "total = {total}");
        assert!(r.iter().all(|&x| close(x, 1.5)));
    }

    #[test]
    fn unconstrained_flow_unaffected_by_others() {
        // Cores 0,1 share a tight bus; core 5 is on an uncontended one.
        let r = maxmin_fair(&[0, 1, 5], 4.0, &[(3.0, vec![0, 1]), (10.0, vec![5])]);
        assert!(close(r[0], 1.5) && close(r[1], 1.5));
        assert!(close(r[2], 4.0));
    }

    #[test]
    fn nested_resources_tightest_binds() {
        // Bus (2 cores, 4.5) inside a cell (4 cores, 6.0).
        let resources = [
            (4.5, vec![0, 1]),
            (4.5, vec![2, 3]),
            (6.0, vec![0, 1, 2, 3]),
        ];
        // Two cores on the same bus: bus would allow 2.25 each but the cell
        // allows 3.0 each — bus binds.
        let r = maxmin_fair(&[0, 1], 4.0, &resources);
        assert!(close(r[0], 2.25), "{r:?}");
        // Two cores on different buses: cell binds at 3.0 each.
        let r = maxmin_fair(&[0, 2], 4.0, &resources);
        assert!(close(r[0], 3.0), "{r:?}");
        // All four: cell splits 6.0 four ways.
        let r = maxmin_fair(&[0, 1, 2, 3], 4.0, &resources);
        assert!(r.iter().all(|&x| close(x, 1.5)), "{r:?}");
    }

    #[test]
    fn finis_terrae_pair_structure() {
        // The Fig. 9(a) shape: same-bus pairs worst, same-cell pairs 25 %
        // below reference, cross-cell pairs unaffected.
        let ft = presets::finis_terrae_node();
        let ms = MemorySystem::new(&ft.memory);
        let reference = ms.reference(0);
        assert!(close(reference, 4.0));
        let same_bus = ms.bandwidth(&[0, 1])[0];
        let same_cell = ms.bandwidth(&[0, 4])[0];
        let cross_cell = ms.bandwidth(&[0, 8])[0];
        assert!(close(same_bus, 2.25), "same_bus = {same_bus}");
        assert!(close(same_cell, 3.0), "same_cell = {same_cell}");
        assert!(close(cross_cell, 4.0), "cross_cell = {cross_cell}");
        assert!(same_bus < same_cell && same_cell < cross_cell);
    }

    #[test]
    fn dunnington_pairs_uniform() {
        // Fig. 9(a): on Dunnington every pair sees the same overhead.
        let d = presets::dunnington();
        let ms = MemorySystem::new(&d.memory);
        let reference = ms.reference(0);
        let mut values = Vec::new();
        for b in 1..d.num_cores {
            values.push(ms.bandwidth(&[0, b])[0]);
        }
        assert!(values.iter().all(|&v| close(v, values[0])));
        assert!(values[0] < reference);
    }

    #[test]
    fn memory_system_accessors() {
        let d = presets::dunnington();
        let ms = MemorySystem::new(&d.memory);
        assert!(close(ms.per_core_cap(), 4.0));
    }

    #[test]
    fn scalability_plateaus_at_capacity() {
        // Effective aggregate bandwidth on Dunnington plateaus at the FSB
        // capacity — the Fig. 9(b) curve.
        let d = presets::dunnington();
        let ms = MemorySystem::new(&d.memory);
        for n in 2..=8usize {
            let cores: Vec<CoreId> = (0..n).collect();
            let bw = ms.bandwidth(&cores);
            let total: f64 = bw.iter().sum();
            assert!(close(total, 6.4), "n = {n}, total = {total}");
        }
    }
}
