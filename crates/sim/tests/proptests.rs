//! Property-based tests for the machine simulator.

use proptest::prelude::*;
use servet_sim::cache::SetAssocCache;
use servet_sim::machine::TraversalJob;
use servet_sim::membw::maxmin_fair;
use servet_sim::presets;
use servet_sim::vm::{AddressSpace, PageAllocPolicy};
use servet_sim::{Machine, KB};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never holds more lines than its capacity, and a line just
    /// inserted is resident.
    #[test]
    fn cache_capacity_invariant(
        sets in 1usize..16,
        assoc in 1usize..8,
        lines in prop::collection::vec(0u64..512, 1..256),
    ) {
        let mut c = SetAssocCache::new(sets, assoc);
        for &l in &lines {
            c.probe(l);
            c.insert(l);
            prop_assert!(c.contains(l));
            prop_assert!(c.resident_lines() <= c.capacity_lines());
        }
    }

    /// probe() is consistent with contains(): a probe hit implies prior
    /// residency, and after insert the next probe hits.
    #[test]
    fn cache_probe_insert_consistency(lines in prop::collection::vec(0u64..64, 1..128)) {
        let mut c = SetAssocCache::new(4, 2);
        for &l in &lines {
            let resident = c.contains(l);
            let hit = c.probe(l);
            prop_assert_eq!(hit, resident);
            c.insert(l);
            prop_assert!(c.contains(l));
        }
    }

    /// Address translation preserves page offsets for every policy.
    #[test]
    fn translation_preserves_offset(
        pages in 1usize..64,
        seed in 0u64..1000,
        vaddr_frac in 0.0f64..1.0,
        policy in prop::sample::select(vec![
            PageAllocPolicy::Random,
            PageAllocPolicy::Colored,
            PageAllocPolicy::Contiguous,
        ]),
    ) {
        let ps = 4096usize;
        let a = AddressSpace::new(1, pages * ps, ps, policy, seed);
        let vaddr = (vaddr_frac * (pages * ps - 1) as f64) as u64;
        prop_assert_eq!(a.translate(vaddr) % ps as u64, vaddr % ps as u64);
    }

    /// Frames are never reused within one address space.
    #[test]
    fn frames_unique(
        pages in 1usize..256,
        seed in 0u64..1000,
        policy in prop::sample::select(vec![
            PageAllocPolicy::Random,
            PageAllocPolicy::Colored,
            PageAllocPolicy::Contiguous,
        ]),
    ) {
        let ps = 4096usize;
        let a = AddressSpace::new(2, pages * ps, ps, policy, seed);
        let mut seen = std::collections::HashSet::new();
        for v in 0..a.num_pages() {
            prop_assert!(seen.insert(a.frame_of(v)));
        }
    }

    /// Max-min fairness: no resource over capacity, no flow over its cap,
    /// and equal-treatment (flows on identical resource sets get equal
    /// rates).
    #[test]
    fn maxmin_respects_all_caps(
        n in 1usize..8,
        cap in 0.5f64..8.0,
        res_cap in 0.5f64..10.0,
    ) {
        let active: Vec<usize> = (0..n).collect();
        let resources = vec![(res_cap, active.clone())];
        let rates = maxmin_fair(&active, cap, &resources);
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= res_cap + 1e-6);
        for &r in &rates {
            prop_assert!(r <= cap + 1e-9);
            prop_assert!((r - rates[0]).abs() < 1e-9, "unequal shares: {rates:?}");
        }
        // Work-conserving: either the resource or the per-core cap binds.
        let expect = cap.min(res_cap / n as f64);
        prop_assert!((rates[0] - expect).abs() < 1e-6);
    }

    /// Adding a flow never increases anyone's bandwidth.
    #[test]
    fn maxmin_monotone_in_contention(n in 2usize..6) {
        let ft = presets::finis_terrae_node();
        let resources: Vec<(f64, Vec<usize>)> = ft
            .memory
            .resources
            .iter()
            .map(|r| (r.capacity_gbs, r.cores.clone()))
            .collect();
        let mut prev = f64::INFINITY;
        for k in 1..=n {
            let active: Vec<usize> = (0..k).collect();
            let rates = maxmin_fair(&active, ft.memory.core_stream_gbs, &resources);
            prop_assert!(rates[0] <= prev + 1e-9);
            prev = rates[0];
        }
    }

    /// Traversal cost is deterministic for a fixed seed and within the
    /// bracket [L1 hit, memory latency + transfer].
    #[test]
    fn traversal_cost_bracketed(
        size_kb in 1usize..256,
        seed in 0u64..50,
    ) {
        let spec = presets::tiny_smp();
        let l1 = spec.caches[0].hit_cycles;
        let worst = spec.memory.latency_cycles
            + 64.0 / (spec.memory.resources[0].capacity_gbs / spec.clock_ghz);
        let mut m = Machine::with_seed(spec, seed);
        let arr = m.alloc_array(size_kb * KB);
        let c = m.traverse(0, &arr, KB, 1, 1);
        prop_assert!(c >= l1 - 1e-9, "c = {c}");
        prop_assert!(c <= worst + 1e-9, "c = {c} > {worst}");
    }

    /// Lockstep concurrency with non-interfering cores matches isolation:
    /// two cores with private caches and small arrays cost the same
    /// together as alone.
    #[test]
    fn concurrent_private_arrays_independent(seed in 0u64..50) {
        let mut m = Machine::with_seed(presets::tiny_smp(), seed);
        let a = m.alloc_array(4 * KB);
        let b = m.alloc_array(4 * KB);
        m.reset();
        let solo = m.traverse(0, &a, KB, 1, 2);
        m.reset();
        let both = m.traverse_concurrent(
            &[
                TraversalJob { core: 0, array: &a, stride: KB },
                TraversalJob { core: 1, array: &b, stride: KB },
            ],
            1,
            2,
        );
        prop_assert!((both[0] - solo).abs() < 0.5, "solo {solo} vs both {:?}", both);
    }
}
