//! Differential suite: the fast-path [`Machine`] against the retained
//! pre-rewrite [`ReferenceMachine`].
//!
//! Every test drives both engines with the same seed and the same access
//! streams and demands *bit-identical* results — exact `f64` cycle
//! counts (compared via bit patterns, so `-0.0 != 0.0` and no epsilon
//! hides a divergence), identical hit/miss counters at every cache
//! level, and identical `CoherenceTraffic` totals. This is what licenses
//! the packed-LRU / hashed-directory / block-replay rewrite: any
//! behavioral drift trips here, not in a zoo sweep three layers up.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use servet_sim::machine::{SharedJob, TraceJob, TraversalJob};
use servet_sim::{presets, Machine, ReferenceMachine, KB};

/// Exact f64 equality via bit patterns, with a readable failure message.
fn assert_bits_eq(fast: f64, refr: f64, what: &str) {
    assert_eq!(
        fast.to_bits(),
        refr.to_bits(),
        "{what}: fast {fast} != reference {refr}"
    );
}

fn assert_all_bits_eq(fast: &[f64], refr: &[f64], what: &str) {
    assert_eq!(fast.len(), refr.len(), "{what}: length mismatch");
    for (i, (f, r)) in fast.iter().zip(refr).enumerate() {
        assert_bits_eq(*f, *r, &format!("{what}[{i}]"));
    }
}

/// Compare per-level per-core cache statistics between the engines.
fn assert_stats_match(fast: &Machine, refr: &ReferenceMachine, what: &str) {
    let spec = fast.spec().clone();
    for cl in &spec.caches {
        for core in 0..spec.num_cores {
            assert_eq!(
                fast.cache_stats(cl.level, core),
                refr.cache_stats(cl.level, core),
                "{what}: L{} stats for core {core} diverge",
                cl.level
            );
        }
    }
}

/// Single-core strided traversals across the whole hierarchy: L1-, L2-
/// and memory-resident sizes, several strides and seeds.
#[test]
fn single_core_traversals_bit_identical() {
    for seed in [0u64, 7, 0x5EED, 991] {
        for &size in &[2 * KB, 16 * KB, 96 * KB, 384 * KB] {
            for &stride in &[64usize, 256, KB] {
                let mut fast = Machine::with_seed(presets::tiny_smp(), seed);
                let mut refr = ReferenceMachine::with_seed(presets::tiny_smp(), seed);
                let fa = fast.alloc_array(size);
                let ra = refr.alloc_array(size);
                fast.reset();
                refr.reset();
                let cf = fast.traverse(0, &fa, stride, 1, 2);
                let cr = refr.traverse(0, &ra, stride, 1, 2);
                assert_bits_eq(
                    cf,
                    cr,
                    &format!("traverse seed={seed} size={size} stride={stride}"),
                );
                assert_stats_match(&fast, &refr, "single-core traversal");
            }
        }
    }
}

/// Concurrent traversals on shared-L2 machines: the lockstep block
/// replay must preserve the interleaving exactly, so both the measured
/// cycles and the hit/miss counters (which see the interleaved stream)
/// must match.
#[test]
fn concurrent_traversals_bit_identical() {
    for seed in [1u64, 42] {
        for cores in [[0usize, 1], [0, 2]] {
            let mut fast = Machine::with_seed(presets::tiny_shared_l2(), seed);
            let mut refr = ReferenceMachine::with_seed(presets::tiny_shared_l2(), seed);
            let size = 80 * KB;
            let fa = fast.alloc_array(size);
            let fb = fast.alloc_array(size);
            let ra = refr.alloc_array(size);
            let rb = refr.alloc_array(size);
            fast.reset();
            refr.reset();
            let cf = fast.traverse_concurrent(
                &[
                    TraversalJob {
                        core: cores[0],
                        array: &fa,
                        stride: KB,
                    },
                    TraversalJob {
                        core: cores[1],
                        array: &fb,
                        stride: KB,
                    },
                ],
                1,
                2,
            );
            let cr = refr.traverse_concurrent(
                &[
                    TraversalJob {
                        core: cores[0],
                        array: &ra,
                        stride: KB,
                    },
                    TraversalJob {
                        core: cores[1],
                        array: &rb,
                        stride: KB,
                    },
                ],
                1,
                2,
            );
            assert_all_bits_eq(&cf, &cr, &format!("concurrent seed={seed} cores={cores:?}"));
            assert_stats_match(&fast, &refr, "concurrent traversal");
        }
    }
}

/// Coherence-enabled shared-buffer streams: random mixes of readers and
/// writers over one shared array, same-line and disjoint-line offsets.
/// Cycles, cache stats, and every `CoherenceTraffic` counter must agree.
#[test]
fn shared_coherent_streams_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD1FF_5EED);
    for trial in 0..12 {
        let seed = rng.gen_range(0..1000u64);
        let mut fast = Machine::with_seed(presets::tiny_smp(), seed);
        let mut refr = ReferenceMachine::with_seed(presets::tiny_smp(), seed);
        let fa = fast.alloc_shared_array(8 * KB);
        let ra = refr.alloc_shared_array(8 * KB);
        let njobs = rng.gen_range(1..4usize);
        let mut spec_jobs = Vec::new();
        for j in 0..njobs {
            spec_jobs.push((
                j % fast.spec().num_cores,
                rng.gen_range(0..128usize),
                64 * rng.gen_range(1..4usize),
                rng.gen_range(4..24usize),
                rng.gen_range(0..2u32) == 0,
            ));
        }
        fn make<'a>(
            spec_jobs: &[(usize, usize, usize, usize, bool)],
            arr: &'a servet_sim::SimArray,
        ) -> Vec<SharedJob<'a>> {
            spec_jobs
                .iter()
                .map(|&(core, offset, stride, count, write)| SharedJob {
                    core,
                    array: arr,
                    offset,
                    stride,
                    count,
                    write,
                })
                .collect()
        }
        fast.reset();
        refr.reset();
        let cf = fast.traverse_shared(&make(&spec_jobs, &fa), 1, 3);
        let cr = refr.traverse_shared(&make(&spec_jobs, &ra), 1, 3);
        assert_all_bits_eq(&cf, &cr, &format!("shared trial={trial}"));
        assert_eq!(
            fast.coherence_traffic(),
            refr.coherence_traffic(),
            "trial {trial}: coherence traffic diverges"
        );
        assert_stats_match(&fast, &refr, "shared streams");
    }
}

/// Random single-core trace replays, including back-to-back calls so
/// bus-clock carry-over between traces is covered.
#[test]
fn run_trace_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xACE5);
    for seed in [3u64, 1234] {
        let mut fast = Machine::with_seed(presets::tiny_smp(), seed);
        let mut refr = ReferenceMachine::with_seed(presets::tiny_smp(), seed);
        let fa = fast.alloc_array(128 * KB);
        let ra = refr.alloc_array(128 * KB);
        for round in 0..3 {
            let addrs: Vec<u64> = (0..1500)
                .map(|_| rng.gen_range(0..(128 * KB) as u64))
                .collect();
            let cf = fast.run_trace(0, &fa, &addrs);
            let cr = refr.run_trace(0, &ra, &addrs);
            assert_bits_eq(cf, cr, &format!("run_trace seed={seed} round={round}"));
        }
        assert_stats_match(&fast, &refr, "run_trace");
    }
}

/// Multi-core trace replay over a shared array with random writes — the
/// SimOracle-shaped workload: block replay + hashed directory together.
#[test]
fn run_traces_coherent_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    for trial in 0..6 {
        let seed = rng.gen_range(0..500u64);
        let mut fast = Machine::with_seed(presets::tiny_smp(), seed);
        let mut refr = ReferenceMachine::with_seed(presets::tiny_smp(), seed);
        let fa = fast.alloc_shared_array(16 * KB);
        let ra = refr.alloc_shared_array(16 * KB);
        let ncores = fast.spec().num_cores.min(3);
        let steps: Vec<Vec<(u64, bool)>> = (0..ncores)
            .map(|_| {
                (0..800)
                    .map(|_| {
                        (
                            rng.gen_range(0..(16 * KB) as u64),
                            rng.gen_range(0..3u32) == 0,
                        )
                    })
                    .collect()
            })
            .collect();
        fast.reset();
        refr.reset();
        let fjobs: Vec<TraceJob<'_>> = steps
            .iter()
            .enumerate()
            .map(|(c, s)| TraceJob {
                core: c,
                array: &fa,
                steps: s,
            })
            .collect();
        let rjobs: Vec<TraceJob<'_>> = steps
            .iter()
            .enumerate()
            .map(|(c, s)| TraceJob {
                core: c,
                array: &ra,
                steps: s,
            })
            .collect();
        let cf = fast.run_traces(&fjobs);
        let cr = refr.run_traces(&rjobs);
        assert_all_bits_eq(&cf, &cr, &format!("run_traces trial={trial}"));
        assert_eq!(
            fast.coherence_traffic(),
            refr.coherence_traffic(),
            "trial {trial}: coherence traffic diverges"
        );
        assert_stats_match(&fast, &refr, "run_traces");
    }
}

/// Blocked-locality read-mostly replay over one shared array: random
/// line, then its sequential elements. Read hits in private levels take
/// the fast engine's directory-skip path on almost every access, so
/// this is the test that holds that skip to bit-identical traffic,
/// cycles and counters against the always-probing reference.
#[test]
fn read_hit_directory_skip_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5C1B);
    for spec in [presets::tiny_smp(), presets::mb_smp()] {
        let mut fast = Machine::with_seed(spec.clone(), 77);
        let mut refr = ReferenceMachine::with_seed(spec.clone(), 77);
        let size = 256 * KB;
        let fa = fast.alloc_shared_array(size);
        let ra = refr.alloc_shared_array(size);
        let cores = spec.num_cores;
        // Three jobs per core: oversubscription, like the headline
        // bench, so heap scheduling interleaves jobs on one core too.
        let steps: Vec<Vec<(u64, bool)>> = (0..cores * 3)
            .map(|_| {
                let mut v = Vec::new();
                for _ in 0..300 {
                    let line = rng.gen_range(0..(size as u64 / 64));
                    for e in 0..8u64 {
                        let addr = line * 64 + e * 8;
                        v.push((addr, rng.gen_range(0..16u32) == 0));
                    }
                }
                v
            })
            .collect();
        let fjobs: Vec<TraceJob<'_>> = steps
            .iter()
            .enumerate()
            .map(|(j, s)| TraceJob {
                core: j % cores,
                array: &fa,
                steps: s,
            })
            .collect();
        let rjobs: Vec<TraceJob<'_>> = steps
            .iter()
            .enumerate()
            .map(|(j, s)| TraceJob {
                core: j % cores,
                array: &ra,
                steps: s,
            })
            .collect();
        let cf = fast.run_traces(&fjobs);
        let cr = refr.run_traces(&rjobs);
        assert_all_bits_eq(&cf, &cr, &format!("skip path on {}", spec.name));
        assert_eq!(
            fast.coherence_traffic(),
            refr.coherence_traffic(),
            "{}: traffic diverges on the skip path",
            spec.name
        );
        assert_stats_match(&fast, &refr, "read-hit skip");
    }
}

/// A second shared address space can physically alias the first, which
/// voids the residency ⇒ valid-bit proof behind the directory skip —
/// the fast engine must fall back to probing and stay bit-identical.
#[test]
fn second_shared_array_disables_the_skip_and_stays_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11A);
    let mut fast = Machine::with_seed(presets::tiny_smp(), 13);
    let mut refr = ReferenceMachine::with_seed(presets::tiny_smp(), 13);
    let fa = fast.alloc_shared_array(32 * KB);
    let fb = fast.alloc_shared_array(32 * KB);
    let ra = refr.alloc_shared_array(32 * KB);
    let rb = refr.alloc_shared_array(32 * KB);
    let steps: Vec<Vec<(u64, bool)>> = (0..4)
        .map(|_| {
            (0..2000)
                .map(|_| {
                    (
                        rng.gen_range(0..(32 * KB) as u64),
                        rng.gen_range(0..4u32) == 0,
                    )
                })
                .collect()
        })
        .collect();
    let fjobs: Vec<TraceJob<'_>> = steps
        .iter()
        .enumerate()
        .map(|(c, s)| TraceJob {
            core: c,
            array: if c % 2 == 0 { &fa } else { &fb },
            steps: s,
        })
        .collect();
    let rjobs: Vec<TraceJob<'_>> = steps
        .iter()
        .enumerate()
        .map(|(c, s)| TraceJob {
            core: c,
            array: if c % 2 == 0 { &ra } else { &rb },
            steps: s,
        })
        .collect();
    let cf = fast.run_traces(&fjobs);
    let cr = refr.run_traces(&rjobs);
    assert_all_bits_eq(&cf, &cr, "two shared aspaces");
    assert_eq!(fast.coherence_traffic(), refr.coherence_traffic());
    assert_stats_match(&fast, &refr, "two shared aspaces");
}

/// 24 homogeneous jobs whose virtual clocks stay tied for the whole
/// run: the heap scheduler degenerates to pure round-robin and must
/// reproduce the reference's linear-scan tie-breaking exactly.
#[test]
fn many_tied_jobs_bit_identical() {
    let spec = presets::dunnington();
    let cores = spec.num_cores;
    let mut fast = Machine::with_seed(spec.clone(), 3);
    let mut refr = ReferenceMachine::with_seed(spec, 3);
    let fas: Vec<_> = (0..cores).map(|_| fast.alloc_array(8 * KB)).collect();
    let ras: Vec<_> = (0..cores).map(|_| refr.alloc_array(8 * KB)).collect();
    // Identical strided step lists per core: every access costs the
    // same, so every selection is a tie.
    let steps: Vec<(u64, bool)> = (0..(8 * KB as u64))
        .step_by(64)
        .cycle()
        .take(1000)
        .map(|a| (a, false))
        .collect();
    let fjobs: Vec<TraceJob<'_>> = (0..cores)
        .map(|c| TraceJob {
            core: c,
            array: &fas[c],
            steps: &steps,
        })
        .collect();
    let rjobs: Vec<TraceJob<'_>> = (0..cores)
        .map(|c| TraceJob {
            core: c,
            array: &ras[c],
            steps: &steps,
        })
        .collect();
    let cf = fast.run_traces(&fjobs);
    let cr = refr.run_traces(&rjobs);
    assert_all_bits_eq(&cf, &cr, "tied 24-job replay");
    assert_stats_match(&fast, &refr, "tied 24-job replay");
}

/// A TLB-equipped machine: the hoisted shift-based TLB key must agree
/// with the original division-based one across TLB-thrashing sizes.
#[test]
fn tlb_machine_bit_identical() {
    for &size in &[32 * KB, 128 * KB] {
        let mut fast = Machine::with_seed(presets::tiny_with_tlb(), 5);
        let mut refr = ReferenceMachine::with_seed(presets::tiny_with_tlb(), 5);
        let fa = fast.alloc_array(size);
        let ra = refr.alloc_array(size);
        fast.reset();
        refr.reset();
        let cf = fast.traverse(0, &fa, KB, 1, 2);
        let cr = refr.traverse(0, &ra, KB, 1, 2);
        assert_bits_eq(cf, cr, &format!("tlb size={size}"));
    }
}

/// The paper's Dunnington preset (24 cores, three levels, shared L2/L3)
/// end to end: the largest real topology in the presets.
#[test]
fn dunnington_pair_bit_identical() {
    let mut fast = Machine::with_seed(presets::dunnington(), 21);
    let mut refr = ReferenceMachine::with_seed(presets::dunnington(), 21);
    let l2 = fast.spec().cache_size(2).unwrap();
    let size = 2 * l2 / 3;
    let fa = fast.alloc_array(size);
    let fb = fast.alloc_array(size);
    let ra = refr.alloc_array(size);
    let rb = refr.alloc_array(size);
    fast.reset();
    refr.reset();
    let cf = fast.traverse_concurrent(
        &[
            TraversalJob {
                core: 0,
                array: &fa,
                stride: KB,
            },
            TraversalJob {
                core: 12,
                array: &fb,
                stride: KB,
            },
        ],
        1,
        2,
    );
    let cr = refr.traverse_concurrent(
        &[
            TraversalJob {
                core: 0,
                array: &ra,
                stride: KB,
            },
            TraversalJob {
                core: 12,
                array: &rb,
                stride: KB,
            },
        ],
        1,
        2,
    );
    assert_all_bits_eq(&cf, &cr, "dunnington 0+12");
    assert_stats_match(&fast, &refr, "dunnington");
}
