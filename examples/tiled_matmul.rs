//! Tiled matrix multiplication: pick the tile size from the *measured*
//! cache sizes and verify the choice by replaying the kernel's exact
//! access trace through the simulated hierarchy.
//!
//! "Tiling is one of the most widely used optimization techniques and our
//! suite can help to this technique by providing all the cache sizes in a
//! portable way" (paper §V).
//!
//! ```text
//! cargo run --release --example tiled_matmul
//! ```

use servet::autotune::tiling::{evaluate_tile, select_tile};
use servet::prelude::*;
use servet::sim::Machine;

fn main() {
    // 1. Measure the machine (cache sizes are all tiling needs).
    println!("measuring cache sizes on a simulated Dempsey ...");
    let mut platform = SimPlatform::dempsey();
    let sweep = mcalibrator(&mut platform, 0, &McalibratorConfig::default());
    let levels = detect_cache_levels(&sweep, platform.page_size(), &DetectConfig::default());
    let profile = MachineProfile {
        schema_version: servet::core::SCHEMA_VERSION,
        machine: "dempsey".into(),
        cores_per_node: 2,
        total_cores: 2,
        page_size: platform.page_size(),
        mcalibrator: Some(sweep),
        cache_levels: levels,
        shared_caches: None,
        memory: None,
        communication: None,
        micro: None,
        false_sharing: None,
    };
    for l in &profile.cache_levels {
        println!("  L{}: {} KB", l.level, l.size / 1024);
    }

    // 2. Choose tiles for each level (f64 elements, A, B and C tiles live
    //    together, keep 25 % headroom).
    println!("\ntile choices (3 tiles of f64 at 75% occupancy):");
    let mut choices = Vec::new();
    for level in 1..=profile.num_cache_levels() as u8 {
        if let Some(choice) = select_tile(&profile, level, 8, 3, 0.75) {
            println!(
                "  target L{}: {} x {} elements ({} KB working set)",
                level,
                choice.tile,
                choice.tile,
                3 * choice.tile * choice.tile * 8 / 1024
            );
            choices.push(choice);
        }
    }

    // 3. Verify on the simulator: replay the blocked matmul trace for a
    //    few candidate tiles, including the selected ones.
    let n = 192;
    println!("\nreplaying {n}x{n} f64 matmul traces through the simulated hierarchy:");
    let mut machine = Machine::new(servet::sim::presets::dempsey());
    let mut candidates: Vec<usize> = vec![8, 16, 32, 64, n];
    for c in &choices {
        candidates.push(c.tile.min(n)); // a tile >= n degenerates to untiled
    }
    candidates.sort_unstable();
    candidates.dedup();
    let mut best = (0usize, f64::INFINITY);
    for &tile in &candidates {
        let cycles = evaluate_tile(&mut machine, n, tile);
        let label = if tile >= n {
            "untiled".into()
        } else {
            format!("{tile:>3}")
        };
        let chosen = if choices.iter().any(|c| c.tile == tile) {
            "  <- selected from measured caches"
        } else {
            ""
        };
        println!("  tile {label}: {cycles:6.2} cycles/access{chosen}");
        if cycles < best.1 {
            best = (tile, cycles);
        }
    }
    println!(
        "\nbest sampled tile: {} ({:.2} cycles/access)",
        best.0, best.1
    );
    let l1_choice = choices.first().expect("has L1");
    let l1_cycles = evaluate_tile(&mut machine, n, l1_choice.tile);
    println!(
        "selected L1 tile {} is within {:.0}% of the best sampled",
        l1_choice.tile,
        (l1_cycles / best.1 - 1.0) * 100.0
    );
}
