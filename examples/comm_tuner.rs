//! Communication tuner: use the measured communication layers to make the
//! two decisions the paper motivates in §III-D and §V — whether to gather
//! small messages on a poorly scalable interconnect, and which broadcast
//! algorithm fits the machine's hierarchy.
//!
//! ```text
//! cargo run --release --example comm_tuner
//! ```

use servet::autotune::aggregation::{aggregation_decision, slowdown_at};
use servet::autotune::collectives::select_broadcast;
use servet::prelude::*;

fn main() {
    println!("measuring a 2-node Finis Terrae ...");
    let mut platform = SimPlatform::finis_terrae(2);
    let config = SuiteConfig {
        skip_shared: true,
        skip_memory: true,
        ..SuiteConfig::default()
    };
    let profile = run_full_suite(&mut platform, &config).profile;
    let comm = profile.communication.as_ref().expect("comm ran");

    println!("\ninterconnect scalability (measured):");
    for (i, layer) in comm.layers.iter().enumerate() {
        let worst = layer
            .scalability
            .last()
            .map(|&(n, _, s)| format!("{s:.1}x at {n} msgs"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  layer {i} ({:.1} us, {} pairs): degradation {worst}",
            layer.latency_us,
            layer.pairs.len()
        );
    }

    // Decision 1: gather or not? 16 ranks each sending one tiny (256 B)
    // message across the InfiniBand layer — the startup-dominated case
    // where gathering pays on a poorly scalable network.
    let ib = comm.layers.len() - 1;
    println!("\nshould 16 x 256 B InfiniBand messages be gathered into one?");
    let decision = aggregation_decision(comm, ib, 16, 256, 0.3);
    println!(
        "  concurrent: {:.1} us   aggregated: {:.1} us   -> {}",
        decision.concurrent_us,
        decision.aggregated_us,
        if decision.aggregate {
            "GATHER"
        } else {
            "send separately"
        }
    );
    println!(
        "  (measured slowdown of 16 concurrent messages: {:.1}x)",
        slowdown_at(comm, ib, 16)
    );

    // Same question for bulky messages inside a node: the rendezvous
    // cost of one huge message plus the packing copy loses there.
    println!("\nand 16 x 64 KB messages inside a node?");
    let decision = aggregation_decision(comm, 0, 16, 64 * 1024, 0.3);
    println!(
        "  concurrent: {:.1} us   aggregated: {:.1} us   -> {}",
        decision.concurrent_us,
        decision.aggregated_us,
        if decision.aggregate {
            "GATHER"
        } else {
            "send separately"
        }
    );

    // Decision 2: broadcast algorithm for 32 ranks.
    println!("\nbroadcast of 32 KB to all 32 ranks — predicted cost per algorithm:");
    for prediction in select_broadcast(&profile, 32, 32 * 1024) {
        println!(
            "  {:>12}: {:>8.1} us",
            prediction.algorithm.name(),
            prediction.predicted_us
        );
    }
    let winner = select_broadcast(&profile, 32, 32 * 1024)[0].algorithm;
    println!("  -> use the '{}' algorithm on this machine", winner.name());
}
