//! False-sharing detection end to end: sweep the separation between two
//! cores' write streams, watch the MESI invalidation traffic fall off,
//! and turn the quiet stride into padding advice for per-thread data.
//!
//! The paper's stages see cross-core effects only through aggregate
//! timings; the coherence layer lets Servet also *count* the line
//! ping-pong that makes false sharing expensive, so the advice is backed
//! by protocol events rather than a timing heuristic.
//!
//! ```text
//! cargo run --release --example false_sharing
//! ```

use servet::autotune::padding::advise_padding;
use servet::core::false_sharing::{detect_false_sharing, FalseSharingConfig};
use servet::core::suite::{run_full_suite, SuiteConfig};
use servet::prelude::*;

fn main() {
    // 1. The sweep alone: two cores write 16 interleaved streams whose
    //    separation shrinks from 256 B down to 8 B. Sub-line separations
    //    ping-pong every line between the cores' caches.
    println!("false-sharing sweep on a simulated 4-core SMP ...");
    let mut platform = SimPlatform::tiny().with_noise(0.002);
    let sweep = detect_false_sharing(&mut platform, &FalseSharingConfig::default());
    println!(
        "  baseline (well-separated streams): {:.1} cycles/access",
        sweep.baseline_cycles
    );
    println!("  separation  cycles/access   ratio   invalidations");
    for p in &sweep.points {
        let inv = p
            .traffic
            .as_ref()
            .map(|t| t.invalidations.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:>7} B   {:>10.1}   {:>6.2}   {:>12}",
            p.stride, p.cycles_per_access, p.ratio, inv
        );
    }
    match sweep.advised_padding {
        Some(pad) => println!("  quiet from {pad} B: that is the detected line-transfer grain"),
        None => println!("  no quiet separation found in the sweep"),
    }
    if let Some(m) = &sweep.comm_model {
        println!(
            "  cache-mediated handoff: {:.1} cycles per {} B line (1 KB message ~ {:.0} cycles)",
            m.per_line_cycles,
            m.line_bytes,
            m.predicted_handoff_cycles(1024)
        );
    }

    // 2. The same result through the suite and the advice engine, the way
    //    `servet advise padding` consumes it from a stored profile.
    println!("\nfull suite with the false-sharing stage enabled ...");
    let mut platform = SimPlatform::tiny().with_noise(0.002);
    let config = SuiteConfig {
        run_false_sharing: true,
        ..SuiteConfig::small(256 * 1024)
    };
    let profile = run_full_suite(&mut platform, &config).profile;
    match advise_padding(&profile) {
        Some(advice) => {
            println!(
                "  advice: pad per-thread data to {} B, align to {} B ({})",
                advice.pad_bytes,
                advice.align_bytes,
                if advice.measured {
                    "from the measured sweep"
                } else {
                    "line-size fallback"
                }
            );
            // A 24-byte per-thread accumulator struct, padded:
            let elem = 24;
            println!(
                "  a {elem}-byte per-thread struct should occupy {} B per slot",
                advice.padded_stride(elem)
            );
            if let Some(r) = advice.worst_ratio {
                println!("  unpadded worst case measured at {r:.1}x the quiet cost");
            }
        }
        None => println!("  no padding advice (profile carries no sweep or line size)"),
    }
}
