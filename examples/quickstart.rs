//! Quickstart: run the full Servet suite on a simulated cluster and save
//! the machine profile.
//!
//! ```text
//! cargo run --release --example quickstart [tiny|dunnington|finis_terrae]
//! ```
//!
//! The paper's workflow (§IV-E): run the suite once at installation time,
//! store the results in a file, and let applications consult it to guide
//! their optimizations.

use servet::prelude::*;

fn main() {
    let machine = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let (mut platform, config) = match machine.as_str() {
        "dunnington" => (SimPlatform::dunnington(), SuiteConfig::default()),
        "finis_terrae" => (SimPlatform::finis_terrae(2), SuiteConfig::default()),
        "tiny" => (SimPlatform::tiny_cluster(), SuiteConfig::small(256 * 1024)),
        other => {
            eprintln!("unknown machine '{other}'; use tiny | dunnington | finis_terrae");
            std::process::exit(2);
        }
    };

    println!("running the Servet suite on '{}' ...", platform.name());
    let report = run_full_suite(&mut platform, &config);
    let profile = &report.profile;

    println!("\ncache hierarchy:");
    for level in &profile.cache_levels {
        println!(
            "  L{}: {} KB  (detected via {:?})",
            level.level,
            level.size / 1024,
            level.method
        );
    }

    if let Some(shared) = &profile.shared_caches {
        println!("\nshared caches:");
        for level in &shared.levels {
            if level.groups.is_empty() {
                println!("  L{}: private to each core", level.level);
            } else {
                println!("  L{}: shared by groups {:?}", level.level, level.groups);
            }
        }
    }

    if let Some(memory) = &profile.memory {
        println!(
            "\nmemory: {:.2} GB/s isolated, {} contention class(es)",
            memory.reference_gbs,
            memory.overheads.len()
        );
        for class in &memory.overheads {
            println!(
                "  {:.2} GB/s when colliding within groups {:?}",
                class.bandwidth_gbs, class.groups
            );
        }
    }

    if let Some(comm) = &profile.communication {
        println!("\ncommunication layers (probe {} B):", comm.probe_size);
        for (i, layer) in comm.layers.iter().enumerate() {
            println!(
                "  layer {i}: {:.2} us, {} pairs, rep {:?}",
                layer.latency_us,
                layer.pairs.len(),
                layer.representative
            );
        }
    }

    let t = &report.timings;
    println!(
        "\nvirtual execution time (paper Table I analogue): {:.1} min",
        t.total_s() / 60.0
    );

    let path = std::env::temp_dir().join(format!("servet-{}.json", profile.machine));
    profile.save(&path).expect("profile written");
    println!("profile saved to {}", path.display());

    let back = MachineProfile::load(&path).expect("profile loads");
    assert_eq!(&back, profile);
    println!("round-trip load verified — applications can consult this file at run time");
}
