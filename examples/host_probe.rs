//! Host probe: run the Servet cache-size benchmark on the *real* machine
//! this program executes on — the portable measurement the paper is
//! about, no simulator involved.
//!
//! ```text
//! cargo run --release --example host_probe
//! ```
//!
//! On a multicore machine, the shared-cache and memory-overhead
//! benchmarks run too; on a unicore container only the cache-size stage
//! is meaningful.

use servet::prelude::*;

fn main() {
    let mut host = HostPlatform::new();
    println!(
        "probing '{}' ({} cores, {} B pages)\n",
        host.name(),
        host.num_cores(),
        host.page_size()
    );

    // Real measurements are noisy: sweep up to 64 MB with the paper's
    // schedule and report both the raw curve and the detection result.
    println!("mcalibrator (this takes a minute) ...");
    let sweep = mcalibrator(&mut host, 0, &McalibratorConfig::default());
    println!("{:>10}  {:>12}", "size", "ns/access");
    for i in 0..sweep.len() {
        if sweep.sizes[i].is_power_of_two() {
            println!(
                "{:>10}  {:>12.2}",
                if sweep.sizes[i] >= 1024 * 1024 {
                    format!("{}M", sweep.sizes[i] / (1024 * 1024))
                } else {
                    format!("{}K", sweep.sizes[i] / 1024)
                },
                sweep.cycles[i]
            );
        }
    }

    // Real hardware wants a slightly higher gradient threshold than the
    // noise-free simulator.
    let config = DetectConfig {
        gradient_threshold: 1.2,
        ..DetectConfig::default()
    };
    let levels = detect_cache_levels(&sweep, host.page_size(), &config);
    if levels.is_empty() {
        println!("\nno clear cache transitions detected (very noisy environment?)");
    } else {
        println!("\ndetected cache hierarchy:");
        for level in &levels {
            println!(
                "  L{}: {} KB  ({:?})",
                level.level,
                level.size / 1024,
                level.method
            );
        }
    }

    // Cross-check against the OS's sysfs view where available.
    let reported = servet::host::sysinfo::reported_caches(0);
    if !reported.is_empty() {
        let measured: Vec<(u8, usize)> = levels.iter().map(|l| (l.level, l.size)).collect();
        println!("\nOS-reported hierarchy (sysfs) for comparison:");
        for r in &reported {
            println!(
                "  L{} {}: {} KB{}",
                r.level,
                r.cache_type,
                r.size / 1024,
                r.associativity
                    .map(|w| format!(", {w}-way"))
                    .unwrap_or_default()
            );
        }
        for (level, m, r) in servet::host::sysinfo::compare_with_reported(&measured, &reported) {
            let verdict = if m == r { "exact" } else { "differs" };
            println!(
                "  L{level}: measured {} KB vs reported {} KB ({verdict})",
                m / 1024,
                r / 1024
            );
        }
    }

    if host.num_cores() >= 2 {
        println!("\nmemory bandwidth (STREAM-like copy):");
        let reference = host.copy_bandwidth_gbs(&[0])[0];
        println!("  1 core : {reference:.2} GB/s");
        let pair = host.copy_bandwidth_gbs(&[0, 1]);
        println!(
            "  2 cores: {:.2} GB/s per core ({:.0}% of isolated)",
            pair[0],
            100.0 * pair[0] / reference
        );
    } else {
        println!("\nsingle core available: pair benchmarks skipped");
    }
}
