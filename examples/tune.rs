//! Search-based autotuning end to end: declare the blocked-matmul
//! decision space, search it with every strategy against the machine
//! simulator, and check the winners against the closed-form advice the
//! measured profile would give — the two schools of autotuning
//! (§IV-E's "guide optimizations" vs ATLAS-style empirical search)
//! validating each other.
//!
//! ```text
//! cargo run --release --example tune
//! ```

use servet::sim::presets;
use servet::tune::compare::ground_truth_profile;
use servet::tune::{
    analytic_config, tune, Oracle, ProfileOracle, SimOracle, Strategy, TuneOptions,
};

fn main() {
    // 1. The machine and the kernel: a 4-core SMP running a 64x64
    //    blocked matmul whose 96 KB working set spills the 64 KB L2, so
    //    tile choice genuinely matters.
    let n = 64;
    let oracle = SimOracle::new(presets::tiny_smp(), 42, n);
    let space = oracle.space();
    println!(
        "decision space for a {n}x{n} matmul on '{}': {} configurations",
        oracle.spec().name,
        space.len()
    );
    for p in &space.params {
        println!("  {:<10} {:?}", p.name, p.values);
    }

    // 2. The analytic baseline: what servet-autotune would advise from
    //    a measured profile, snapped onto the same grid.
    let profile = ground_truth_profile(oracle.spec());
    let advised = analytic_config(&profile, &space);
    let advised_score = oracle.evaluate(&advised);
    let show = |config: &servet::tune::Config| {
        config
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "\nanalytic advice: {}  ({advised_score:.0} cycles)",
        show(&advised)
    );

    // 3. Search the space with every strategy; each reports what it
    //    found and how much of the space it had to price to find it.
    println!("\nsearching (simulator oracle, cycles = makespan of the slowest thread):");
    for strategy in Strategy::ALL {
        let outcome = tune(&oracle, &space, &TuneOptions::new(strategy), 2);
        println!(
            "  {:<12} {}  score {:>9.0}  ratio {:.3}  ({:>2}/{} evaluated)",
            strategy.name(),
            show(&outcome.best),
            outcome.best_score,
            outcome.best_score / advised_score,
            outcome.evaluations,
            space.len()
        );
    }

    // 4. The registry's view: a closed-form oracle over the measured
    //    profile prices candidates without a simulator, which is what
    //    `servet query tune` serves for machines the registry has only
    //    profiles for. Line search suffices on its convex surface.
    let remote = ProfileOracle::new(profile, n);
    let remote_space = remote.space();
    let outcome = tune(&remote, &remote_space, &TuneOptions::new(Strategy::Line), 1);
    println!(
        "\nprofile-oracle line search (what the registry serves): {}  ({} evaluations)",
        show(&outcome.best),
        outcome.evaluations
    );
}
