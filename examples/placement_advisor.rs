//! Placement advisor: measure a cluster with Servet, then map an
//! application's processes onto cores using the measured profile — the
//! §V use case of the paper, in the spirit of MPIPP but with measured
//! (not documented) costs.
//!
//! ```text
//! cargo run --release --example placement_advisor [ring|stencil|shift|master]
//! ```

use servet::prelude::*;

fn main() {
    let shape = std::env::args().nth(1).unwrap_or_else(|| "shift".into());

    // 1. Measure the cluster (communication benchmark is what placement
    //    needs; skip the rest for brevity).
    println!("measuring a 2-node Finis Terrae with Servet ...");
    let mut platform = SimPlatform::finis_terrae(2);
    let config = SuiteConfig {
        skip_shared: true,
        skip_memory: true,
        ..SuiteConfig::default()
    };
    let profile = run_full_suite(&mut platform, &config).profile;
    let comm = profile.communication.as_ref().expect("comm ran");
    println!(
        "  {} communication layers over {} cores\n",
        comm.num_layers(),
        profile.total_cores
    );

    // 2. Describe the application.
    let pattern = match shape.as_str() {
        "ring" => CommPattern::ring(32, 16 * 1024),
        "stencil" => CommPattern::stencil2d(4, 8, 16 * 1024),
        "shift" => CommPattern::shift(16, 8, 16 * 1024),
        "master" => CommPattern::master_worker(16, 16 * 1024),
        other => {
            eprintln!("unknown pattern '{other}'");
            std::process::exit(2);
        }
    };
    println!(
        "application: {shape} pattern, {} ranks, {} B messages",
        pattern.ranks, pattern.message_size
    );

    // 3. Optimize the mapping.
    let placer = Placer::new(&profile);
    let linear = placer.linear(&pattern);
    let random = placer.random(&pattern, 1);
    let greedy = placer.greedy(&pattern);
    let anneal = placer.anneal(&pattern, 99, 6000);

    println!("\npredicted cost per iteration:");
    println!("  linear (rank i -> core i): {:>8.1} us", linear.cost_us);
    println!("  random:                    {:>8.1} us", random.cost_us);
    println!("  greedy swaps:              {:>8.1} us", greedy.cost_us);
    println!("  simulated annealing:       {:>8.1} us", anneal.cost_us);

    let best = if greedy.cost_us <= anneal.cost_us {
        &greedy
    } else {
        &anneal
    };
    println!(
        "\nbest mapping ({:.2}x better than linear):",
        linear.cost_us / best.cost_us
    );
    for (rank, core) in best.mapping.iter().enumerate() {
        print!("  rank {rank:>2} -> core {core:>2}");
        if (rank + 1) % 4 == 0 {
            println!();
        }
    }
    println!();
}
