//! Cache explorer: watch the mcalibrator curve and the detection
//! algorithms work on any of the paper's machines.
//!
//! ```text
//! cargo run --release --example cache_explorer [dempsey|athlon|dunnington|finis_terrae]
//! ```
//!
//! Prints the paper's Fig. 2 data — cycles per access and gradients per
//! array size — then the detected levels (Fig. 4) including which ones
//! needed the probabilistic algorithm (Fig. 3).

use servet::core::cache_detect::DetectionMethod;
use servet::prelude::*;

fn main() {
    let machine = std::env::args().nth(1).unwrap_or_else(|| "dempsey".into());
    let mut platform = match machine.as_str() {
        "dempsey" => SimPlatform::dempsey(),
        "athlon" => SimPlatform::athlon3200(),
        "dunnington" => SimPlatform::dunnington(),
        "finis_terrae" => SimPlatform::finis_terrae(1),
        other => {
            eprintln!("unknown machine '{other}'");
            std::process::exit(2);
        }
    };

    println!("mcalibrator on '{}' (1 KB stride):\n", platform.name());
    let sweep = mcalibrator(&mut platform, 0, &McalibratorConfig::default());
    let gradients = sweep.gradients();

    println!("{:>10}  {:>14}  {:>9}", "size", "cycles/access", "gradient");
    for i in 0..sweep.len() {
        let bar_len = (sweep.cycles[i].ln().max(0.0) * 8.0) as usize;
        let gradient = if i + 1 < sweep.len() {
            format!("{:9.3}", gradients[i])
        } else {
            format!("{:>9}", "-")
        };
        println!(
            "{:>10}  {:>14.2}  {}  {}",
            if sweep.sizes[i] >= 1024 * 1024 {
                format!("{}M", sweep.sizes[i] / (1024 * 1024))
            } else {
                format!("{}K", sweep.sizes[i] / 1024)
            },
            sweep.cycles[i],
            gradient,
            "#".repeat(bar_len)
        );
    }

    let levels = detect_cache_levels(&sweep, platform.page_size(), &DetectConfig::default());
    println!("\ndetected cache hierarchy:");
    for level in &levels {
        let how = match level.method {
            DetectionMethod::GradientPeak => "sharp gradient peak",
            DetectionMethod::Probabilistic => "probabilistic algorithm (physically indexed)",
        };
        println!("  L{}: {} KB  [{how}]", level.level, level.size / 1024);
    }
}
