//! # servet
//!
//! A Rust reproduction of **Servet: A Benchmark Suite for Autotuning on
//! Multicore Clusters** (J. González-Domínguez, G. L. Taboada,
//! B. B. Fraguela, M. J. Martín, J. Touriño — IPDPS 2010).
//!
//! Servet *measures* the hardware parameters autotuned parallel codes
//! need — cache sizes and sharing topology, memory-access bottlenecks,
//! communication layers and their scalability — instead of trusting
//! vendor specifications. This facade crate re-exports the whole
//! workspace:
//!
//! * [`core`] (`servet-core`) — the benchmark suite itself: mcalibrator,
//!   the probabilistic cache-size algorithm, shared-cache detection,
//!   memory-overhead characterization, communication-cost determination,
//!   the [`core::MachineProfile`] they produce, and the
//!   [`core::zoo`] batch driver that measures whole populations of
//!   perturbed machines (`servet zoo`) and scores detection accuracy
//!   against ground truth.
//! * [`sim`] (`servet-sim`) — the machine simulator substrate: cache
//!   hierarchies, virtual memory, prefetchers, memory buses.
//! * [`net`] (`servet-net`) — the cluster interconnect simulator:
//!   communication layers, protocol models, contention, collectives.
//! * [`host`] (`servet-host`) — the real-hardware backend.
//! * [`autotune`] (`servet-autotune`) — consumers of the profile:
//!   process placement, tiling, message aggregation, collective
//!   selection.
//! * [`tune`] (`servet-tune`) — search-based autotuning: countable
//!   parameter spaces, four search strategies over a pluggable
//!   evaluation oracle (simulator trace replay or a closed-form model
//!   over a measured profile), and the zoo comparison that races search
//!   against the analytic advice (`servet tune`).
//! * [`registry`] (`servet-registry`) — the serving layer: a
//!   content-addressed profile store, sharded caches, a memoized advice
//!   engine and tune engine, and an event-driven TCP server that
//!   multiplexes thousands of connections over a fixed worker pool
//!   (`servet serve` / `servet query` / `servet loadgen`).
//! * [`stats`] (`servet-stats`) — binomial tails, gradients, clustering,
//!   union-find, regression.
//! * [`obs`] (`servet-obs`) — spans, counters, and latency histograms;
//!   `servet --trace` renders the span tree of any run.
//!
//! `ARCHITECTURE.md` at the repository root maps these crates to the
//! paper's sections and to each other.
//!
//! ## Quickstart
//!
//! ```
//! use servet::prelude::*;
//!
//! // Measure a (simulated) 24-core Dunnington node end to end.
//! let mut platform = SimPlatform::tiny_cluster();     // use ::dunnington() for the real thing
//! let config = SuiteConfig::small(256 * 1024);        // ::default() for full machines
//! let report = run_full_suite(&mut platform, &config);
//! let profile = &report.profile;
//! assert!(profile.num_cache_levels() >= 1);
//!
//! // The profile is what applications consult at run time.
//! let json = profile.to_json();
//! assert!(json.contains("cache_levels"));
//! ```

pub use servet_autotune as autotune;
pub use servet_core as core;
pub use servet_host as host;
pub use servet_net as net;
pub use servet_obs as obs;
pub use servet_registry as registry;
pub use servet_sim as sim;
pub use servet_stats as stats;
pub use servet_tune as tune;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use servet_autotune::aggregation::aggregation_decision;
    pub use servet_autotune::collectives::select_broadcast;
    pub use servet_autotune::placement::{CommPattern, Placer};
    pub use servet_autotune::tiling::select_tile;
    pub use servet_core::cache_detect::{detect_cache_levels, DetectConfig};
    pub use servet_core::comm::{characterize_communication, CommConfig};
    pub use servet_core::mcalibrator::{mcalibrator, McalibratorConfig};
    pub use servet_core::mem_overhead::{characterize_memory, MemOverheadConfig};
    pub use servet_core::platform::Platform;
    pub use servet_core::profile::MachineProfile;
    pub use servet_core::shared_cache::{detect_shared_caches, SharedCacheConfig};
    pub use servet_core::sim_platform::SimPlatform;
    pub use servet_core::suite::{run_full_suite, run_suite, SuiteConfig};
    pub use servet_core::zoo::{generate_population, run_zoo, ZooConfig, ZooReport};
    pub use servet_host::HostPlatform;
    pub use servet_registry::{
        compute_advice, AdviceOutcome, AdviceQuery, Registry, RegistryClient,
        RetryingRegistryClient,
    };
    pub use servet_tune::{
        analytic_config, kernel_space, tune, Oracle, ParamSpace, ProfileOracle, SimOracle,
        Strategy, TuneOptions, TuneOutcome,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let p = SimPlatform::tiny();
        assert_eq!(p.num_cores(), 4);
        let _ = HostPlatform::new();
    }
}
