//! The `servet` command-line tool: measure machines (simulated or real),
//! inspect profiles, and ask for autotuning advice.
//!
//! ```text
//! servet simulate dunnington --out dun.json     # run the suite on a preset
//! servet probe --max-mb 64 --out here.json      # run it on THIS machine
//! servet show dun.json                          # summarize a profile
//! servet advise threads --profile dun.json      # memory-concurrency advice
//! servet advise tile --profile dun.json --level 2
//! servet advise bcast --profile dun.json --ranks 24 --bytes 32768
//! ```

use servet::autotune::collectives::select_broadcast;
use servet::autotune::concurrency::advise_memory_threads;
use servet::autotune::tiling::select_tile;
use servet::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("advise") => cmd_advise(&args[1..]),
        Some("machines") => cmd_machines(),
        Some("help") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'; try 'servet help'");
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    println!(
        "servet — measure the hardware parameters autotuned codes need\n\
         \n\
         USAGE:\n\
         \x20 servet simulate <machine> [--micro] [--out FILE]   run the suite on a simulated preset\n\
         \x20 servet probe [--max-mb N] [--micro] [--out FILE]   run the suite on this machine\n\
         \x20 servet show <profile.json>                         summarize a stored profile\n\
         \x20 servet advise threads --profile FILE               memory-concurrency advice\n\
         \x20 servet advise tile --profile FILE [--level L]      tile-size advice\n\
         \x20 servet advise bcast --profile FILE [--ranks N] [--bytes B]\n\
         \x20 servet machines                                    list simulated presets"
    );
}

/// Value of `--flag VALUE` in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn cmd_machines() -> i32 {
    println!("simulated machine presets:");
    println!("  dunnington     24-core 4x Xeon E7450 node (paper SS IV)");
    println!("  finis_terrae   2 nodes x 16 Itanium2 cores over InfiniBand");
    println!("  dempsey        dual-core Xeon 5060");
    println!("  athlon3200     unicore AMD Athlon");
    println!("  tiny           fast 2x4-core demo cluster");
    0
}

fn run_and_save(
    platform: &mut dyn Platform,
    config: &SuiteConfig,
    out: Option<&str>,
) -> i32 {
    eprintln!("running the Servet suite on '{}' ...", platform.name());
    let report = run_full_suite(platform, config);
    print_profile(&report.profile);
    println!(
        "\nvirtual/wall benchmark time: {:.1} min",
        report.timings.total_s() / 60.0
    );
    if let Some(path) = out {
        if let Err(e) = report.profile.save(path) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("profile written to {path}");
    }
    0
}

fn cmd_simulate(args: &[String]) -> i32 {
    let Some(machine) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: servet simulate <machine> [--micro] [--out FILE]");
        return 2;
    };
    let (mut platform, mut config) = match machine.as_str() {
        "dunnington" => (SimPlatform::dunnington(), SuiteConfig::default()),
        "finis_terrae" => (SimPlatform::finis_terrae(2), SuiteConfig::default()),
        "dempsey" => (SimPlatform::dempsey(), SuiteConfig::default()),
        "athlon3200" => (SimPlatform::athlon3200(), SuiteConfig::default()),
        "tiny" => (
            SimPlatform::tiny_cluster(),
            SuiteConfig::small(256 * 1024),
        ),
        other => {
            eprintln!("unknown machine '{other}'; see 'servet machines'");
            return 2;
        }
    };
    config.run_micro = has_flag(args, "--micro");
    run_and_save(&mut platform, &config, flag_value(args, "--out"))
}

fn cmd_probe(args: &[String]) -> i32 {
    let max_mb: usize = flag_value(args, "--max-mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut platform = HostPlatform::new();
    let config = SuiteConfig {
        mcalibrator: McalibratorConfig {
            max_size: max_mb * 1024 * 1024,
            ..Default::default()
        },
        detect: DetectConfig {
            gradient_threshold: 1.2, // real machines are noisier
            ..Default::default()
        },
        run_micro: has_flag(args, "--micro"),
        ..Default::default()
    };
    run_and_save(&mut platform, &config, flag_value(args, "--out"))
}

fn load_profile(args: &[String]) -> Result<MachineProfile, i32> {
    let Some(path) = flag_value(args, "--profile") else {
        eprintln!("missing --profile FILE");
        return Err(2);
    };
    MachineProfile::load(path).map_err(|e| {
        eprintln!("cannot load {path}: {e}");
        1
    })
}

fn cmd_show(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: servet show <profile.json>");
        return 2;
    };
    match MachineProfile::load(path) {
        Ok(profile) => {
            print_profile(&profile);
            0
        }
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            1
        }
    }
}

fn cmd_advise(args: &[String]) -> i32 {
    let Some(what) = args.first() else {
        eprintln!("usage: servet advise <threads|tile|bcast> --profile FILE");
        return 2;
    };
    let profile = match load_profile(&args[1..]) {
        Ok(p) => p,
        Err(code) => return code,
    };
    match what.as_str() {
        "threads" => {
            let Some(memory) = profile.memory.as_ref() else {
                eprintln!("profile has no memory characterization");
                return 1;
            };
            match advise_memory_threads(memory, 0.05) {
                Some(a) => {
                    println!(
                        "memory-bound regions: use {} concurrent thread(s) per group {:?}",
                        a.threads_per_group, a.group
                    );
                    println!(
                        "  aggregate {:.2} GB/s (full group would get {:.2} GB/s)",
                        a.aggregate_gbs, a.full_aggregate_gbs
                    );
                }
                None => println!("no memory contention measured: use every core"),
            }
            0
        }
        "tile" => {
            let level: u8 = flag_value(&args[1..], "--level")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            match select_tile(&profile, level, 8, 3, 0.75) {
                Some(choice) => {
                    println!(
                        "blocked matmul over f64: tile {} x {} targets the {} KB L{}",
                        choice.tile,
                        choice.tile,
                        choice.cache_size / 1024,
                        choice.level
                    );
                    0
                }
                None => {
                    eprintln!("profile has no cache level {level}");
                    1
                }
            }
        }
        "bcast" => {
            if profile.communication.is_none() {
                eprintln!("profile has no communication characterization");
                return 1;
            }
            let ranks: usize = flag_value(&args[1..], "--ranks")
                .and_then(|v| v.parse().ok())
                .unwrap_or(profile.total_cores);
            let bytes: usize = flag_value(&args[1..], "--bytes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(32 * 1024);
            println!("broadcast of {bytes} B to {ranks} ranks — predicted:");
            for p in select_broadcast(&profile, ranks.min(profile.total_cores), bytes) {
                println!("  {:>12}: {:>9.1} us", p.algorithm.name(), p.predicted_us);
            }
            0
        }
        other => {
            eprintln!("unknown advice '{other}'; use threads | tile | bcast");
            2
        }
    }
}

fn print_profile(profile: &MachineProfile) {
    println!(
        "machine '{}': {} cores/node, {} total, {} B pages",
        profile.machine, profile.cores_per_node, profile.total_cores, profile.page_size
    );
    println!("cache hierarchy:");
    for level in &profile.cache_levels {
        let shared = profile.cores_sharing_cache(level.level, 0);
        let sharing = if shared.is_empty() {
            "private".to_string()
        } else {
            format!("core 0 shares with {shared:?}")
        };
        println!(
            "  L{}: {:>8} KB  [{:?}] {}",
            level.level,
            level.size / 1024,
            level.method,
            sharing
        );
    }
    if let Some(micro) = &profile.micro {
        if let Some(line) = micro.line_size {
            println!("  line size: {line} B");
        }
        if let Some(ways) = micro.l1_associativity {
            println!("  L1 associativity: {ways}-way");
        }
        if let Some(entries) = micro.tlb_entries {
            println!("  data TLB: >= {entries} entries");
        }
    }
    if let Some(memory) = &profile.memory {
        println!(
            "memory: {:.2} GB/s isolated, {} contention class(es)",
            memory.reference_gbs,
            memory.overheads.len()
        );
        for class in &memory.overheads {
            println!(
                "  {:.2} GB/s within groups of {:?}",
                class.bandwidth_gbs,
                class.groups.iter().map(Vec::len).collect::<Vec<_>>()
            );
        }
    }
    if let Some(comm) = &profile.communication {
        println!("communication layers (probe {} B):", comm.probe_size);
        for (i, layer) in comm.layers.iter().enumerate() {
            let degradation = layer
                .scalability
                .last()
                .map(|&(n, _, s)| format!(", {s:.1}x at {n} concurrent msgs"))
                .unwrap_or_default();
            println!(
                "  layer {i}: {:.2} us, {} pairs{degradation}",
                layer.latency_us,
                layer.pairs.len()
            );
        }
    }
}
