//! The `servet` command-line tool: measure machines (simulated or real),
//! inspect profiles, and ask for autotuning advice.
//!
//! ```text
//! servet simulate dunnington --out dun.json     # run the suite on a preset
//! servet suite                                  # shorthand: simulate tiny
//! servet probe --max-mb 64 --out here.json      # run it on THIS machine
//! servet show dun.json                          # summarize a profile
//! servet advise threads --profile dun.json      # memory-concurrency advice
//! servet advise tile --profile dun.json --level 2
//! servet advise bcast --profile dun.json --ranks 24 --bytes 32768
//! servet tune --machine tiny_smp --strategy line     # search the kernel space
//! servet tune --zoo --machines 64 --check            # search vs analytic, population-wide
//! servet serve --dir ~/.servet --addr 127.0.0.1:7431
//! servet query put --profile dun.json --name dunnington
//! servet query advise tile --key dunnington --level 2 --json
//! servet zoo --machines 128 --workers 8 --seed 42  # batch-measure a population
//! servet --trace suite                          # span tree on stderr at exit
//! ```
//!
//! `--out FILE` also writes a `FILE → *.manifest.json` sibling recording
//! how the profile was measured (config, span tree, counters).

use servet::obs::format_ns;
use servet::prelude::*;
use servet::registry::{serve, AdviceOutcome, AdviceQuery, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// Default address for `servet serve` / `servet query`.
const DEFAULT_ADDR: &str = "127.0.0.1:7431";

fn main() {
    // `--trace` is a global flag: accept it anywhere on the line.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    args.retain(|a| a != "--trace");
    let code = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("advise") => cmd_advise(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("zoo") => cmd_zoo(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("machines") => cmd_machines(),
        Some("help") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'; try 'servet help'");
            2
        }
    };
    if trace {
        print_trace();
    }
    std::process::exit(code);
}

/// Render everything `servet-obs` accumulated during the run: the span
/// tree of the measurement phases, then the counter/histogram summary.
/// Goes to stderr so `--json` outputs on stdout stay machine-parseable.
fn print_trace() {
    let spans = servet::obs::spans_snapshot();
    if spans.is_empty() {
        eprintln!("--trace: no spans recorded");
    } else {
        eprint!("{}", servet::obs::render_span_tree(&spans));
    }
    eprint!("{}", servet::obs::summary());
}

fn print_help() {
    println!(
        "servet — measure the hardware parameters autotuned codes need\n\
         \n\
         USAGE:\n\
         \x20 servet simulate <machine> [--micro] [--false-sharing] [--out FILE]\n\
         \x20                                                    run the suite on a simulated preset\n\
         \x20 servet suite [machine] [--out FILE]                like simulate; defaults to 'tiny'\n\
         \x20 servet probe [--max-mb N] [--micro] [--out FILE]   run the suite on this machine\n\
         \x20 servet show <profile.json>                         summarize a stored profile\n\
         \x20 servet advise threads --profile FILE [--tolerance T] [--json]\n\
         \x20 servet advise tile --profile FILE [--level L] [--json]\n\
         \x20 servet advise bcast --profile FILE [--ranks N] [--bytes B] [--json]\n\
         \x20 servet advise padding --profile FILE [--json]\n\
         \x20 servet tune [--machine PRESET | --profile FILE] [--strategy S] [--n N]\n\
         \x20             [--seed S] [--workers N] [--sweeps N] [--steps N] [--samples N]\n\
         \x20             [--json] [--out FILE]\n\
         \x20                                                    search the blocked-matmul space\n\
         \x20                                                    (strategies: exhaustive, line,\n\
         \x20                                                    neighborhood, monte-carlo)\n\
         \x20 servet tune --zoo [--machines N] [--workers N] [--seed S] [--n N]\n\
         \x20             [--strategies a,b] [--epsilon E] [--check [--min-parity P]] [--out FILE]\n\
         \x20                                                    race search against the analytic\n\
         \x20                                                    advice across the machine zoo\n\
         \x20 servet serve --dir DIR [--addr HOST:PORT] [--read-timeout-ms N] [--workers N]\n\
         \x20              [--backlog N] [--max-conns N] [--drain-grace-ms N]\n\
         \x20                                                    run the profile registry daemon\n\
         \x20 servet query put --profile FILE [--name NAME] [--addr A]\n\
         \x20 servet query get --key KEY [--json] [--addr A]\n\
         \x20 servet query list [--json] [--addr A]\n\
         \x20 servet query advise <threads|tile|bcast|padding> --key KEY [flags] [--json] [--addr A]\n\
         \x20 servet query tune --key KEY [--strategy S] [--n N] [tune flags] [--json] [--addr A]\n\
         \x20 servet query stats [--json] [--addr A]\n\
         \x20 servet zoo [--machines N] [--mb N] [--workers N] [--seed S] [--out FILE]\n\
         \x20            [--addr HOST:PORT | --dir DIR | --no-stream]\n\
         \x20                                                    measure a population of perturbed\n\
         \x20                                                    machines (plus N MB-range ones),\n\
         \x20                                                    stream profiles to a registry,\n\
         \x20                                                    score detection accuracy\n\
         \x20 servet loadgen [--addr A] [--conns N] [--ops N] [--op-workers N]\n\
         \x20                [--mode closed|open --rate R] [--hold-ms N] [--out FILE]\n\
         \x20                [--check] [--max-p99-ms N] [--seed S]\n\
         \x20                                                    hold N connections against a registry\n\
         \x20                                                    while driving request traffic; report\n\
         \x20                                                    throughput + p50/p99/p999 latency\n\
         \x20 servet machines                                    list simulated presets\n\
         \n\
         GLOBAL FLAGS:\n\
         \x20 --trace    render the measurement span tree and metric summary on stderr at exit;\n\
         \x20            --out FILE also writes FILE's *.manifest.json measurement record"
    );
}

/// Value of `--flag VALUE` in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn cmd_machines() -> i32 {
    println!("simulated machine presets:");
    println!("  dunnington     24-core 4x Xeon E7450 node (paper SS IV)");
    println!("  finis_terrae   2 nodes x 16 Itanium2 cores over InfiniBand");
    println!("  dempsey        dual-core Xeon 5060");
    println!("  athlon3200     unicore AMD Athlon");
    println!("  tiny           fast 2x4-core demo cluster");
    0
}

fn run_and_save(platform: &mut dyn Platform, config: &SuiteConfig, out: Option<&str>) -> i32 {
    eprintln!("running the Servet suite on '{}' ...", platform.name());
    // The scoped entry point: the manifest holds exactly this run's
    // spans and counters even if other measurements share the process.
    let (report, manifest) = run_suite(platform, config);
    print_profile(&report.profile);
    println!(
        "\nvirtual/wall benchmark time: {:.1} min",
        report.timings.total_s() / 60.0
    );
    if let Some(path) = out {
        if let Err(e) = report.profile.save(path) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("profile written to {path}");
        // The manifest records how the profile was measured: the exact
        // config plus the observed span tree and counters.
        let mpath = servet::core::manifest_path(path);
        if let Err(e) = manifest.save(&mpath) {
            eprintln!("cannot write {}: {e}", mpath.display());
            return 1;
        }
        println!("run manifest written to {}", mpath.display());
    }
    0
}

fn cmd_simulate(args: &[String]) -> i32 {
    let Some(machine) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: servet simulate <machine> [--micro] [--false-sharing] [--out FILE]");
        return 2;
    };
    let (mut platform, mut config) = match machine.as_str() {
        "dunnington" => (SimPlatform::dunnington(), SuiteConfig::default()),
        "finis_terrae" => (SimPlatform::finis_terrae(2), SuiteConfig::default()),
        "dempsey" => (SimPlatform::dempsey(), SuiteConfig::default()),
        "athlon3200" => (SimPlatform::athlon3200(), SuiteConfig::default()),
        "tiny" => (SimPlatform::tiny_cluster(), SuiteConfig::small(256 * 1024)),
        other => {
            eprintln!("unknown machine '{other}'; see 'servet machines'");
            return 2;
        }
    };
    config.run_micro = has_flag(args, "--micro");
    config.run_false_sharing = has_flag(args, "--false-sharing");
    run_and_save(&mut platform, &config, flag_value(args, "--out"))
}

/// `servet suite [machine]` — shorthand for `simulate` that defaults to
/// the fast `tiny` preset, so `servet --trace suite` demos the span tree
/// in under a second.
fn cmd_suite(args: &[String]) -> i32 {
    if args.first().is_some_and(|a| !a.starts_with("--")) {
        cmd_simulate(args)
    } else {
        let mut with_default = vec!["tiny".to_string()];
        with_default.extend(args.iter().cloned());
        cmd_simulate(&with_default)
    }
}

fn cmd_probe(args: &[String]) -> i32 {
    let max_mb: usize = flag_value(args, "--max-mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut platform = HostPlatform::new();
    let config = SuiteConfig {
        mcalibrator: McalibratorConfig {
            max_size: max_mb * 1024 * 1024,
            ..Default::default()
        },
        detect: DetectConfig {
            gradient_threshold: 1.2, // real machines are noisier
            ..Default::default()
        },
        run_micro: has_flag(args, "--micro"),
        run_false_sharing: has_flag(args, "--false-sharing"),
        ..Default::default()
    };
    run_and_save(&mut platform, &config, flag_value(args, "--out"))
}

fn load_profile(args: &[String]) -> Result<MachineProfile, i32> {
    let Some(path) = flag_value(args, "--profile") else {
        eprintln!("missing --profile FILE");
        return Err(2);
    };
    MachineProfile::load(path).map_err(|e| {
        eprintln!("cannot load {path}: {e}");
        1
    })
}

fn cmd_show(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: servet show <profile.json>");
        return 2;
    };
    match MachineProfile::load(path) {
        Ok(profile) => {
            print_profile(&profile);
            0
        }
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            1
        }
    }
}

/// Parse `servet advise <what> ...` flags into the shared query type the
/// registry protocol speaks (the CLI and the server answer identically).
fn parse_advice_query(what: &str, args: &[String]) -> Result<AdviceQuery, String> {
    let num = |flag: &str, default: usize| -> usize {
        flag_value(args, flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    match what {
        "threads" => Ok(AdviceQuery::Threads {
            tolerance: flag_value(args, "--tolerance")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.05),
        }),
        "tile" => Ok(AdviceQuery::Tile {
            level: num("--level", 1) as u8,
            elem_size: num("--elem-size", 8),
            matrices: num("--matrices", 3),
            occupancy: flag_value(args, "--occupancy")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.75),
        }),
        // ranks 0 means "every measured core"; the engine resolves it.
        "bcast" => Ok(AdviceQuery::Bcast {
            ranks: num("--ranks", 0),
            bytes: num("--bytes", 32 * 1024),
        }),
        "padding" => Ok(AdviceQuery::Padding),
        other => Err(format!(
            "unknown advice '{other}'; use threads | tile | bcast | padding"
        )),
    }
}

/// Human rendering of an advice outcome (the `--json` path prints the
/// serde struct instead).
fn print_outcome(outcome: &AdviceOutcome) {
    match outcome {
        AdviceOutcome::Threads { advice: Some(a) } => {
            println!(
                "memory-bound regions: use {} concurrent thread(s) per group {:?}",
                a.threads_per_group, a.group
            );
            println!(
                "  aggregate {:.2} GB/s (full group would get {:.2} GB/s)",
                a.aggregate_gbs, a.full_aggregate_gbs
            );
        }
        AdviceOutcome::Threads { advice: None } => {
            println!("no memory contention measured: use every core");
        }
        AdviceOutcome::Tile { choice } => {
            println!(
                "blocked matmul over f64: tile {} x {} targets the {} KB L{}",
                choice.tile,
                choice.tile,
                choice.cache_size / 1024,
                choice.level
            );
        }
        AdviceOutcome::Bcast {
            ranks,
            bytes,
            predictions,
        } => {
            println!("broadcast of {bytes} B to {ranks} ranks — predicted:");
            for p in predictions {
                println!("  {:>12}: {:>9.1} us", p.algorithm.name(), p.predicted_us);
            }
        }
        AdviceOutcome::Padding { advice } => {
            let source = if advice.measured {
                "measured false-sharing sweep"
            } else {
                "micro-probe line size"
            };
            println!(
                "pad per-thread data to {} B, align to {} B ({source})",
                advice.pad_bytes, advice.align_bytes
            );
            if let Some(r) = advice.worst_ratio {
                println!("  unpadded writers were {r:.1}x slower in the sweep");
            }
            if let Some(c) = advice.handoff_cycles_per_line {
                println!("  on-chip handoff: {c:.0} cycles per line");
            }
        }
    }
}

fn emit_outcome(outcome: &AdviceOutcome, json: bool) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(outcome).expect("outcome serializes")
        );
    } else {
        print_outcome(outcome);
    }
}

fn cmd_advise(args: &[String]) -> i32 {
    let Some(what) = args.first() else {
        eprintln!("usage: servet advise <threads|tile|bcast|padding> --profile FILE [--json]");
        return 2;
    };
    let rest = &args[1..];
    let query = match parse_advice_query(what, rest) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let profile = match load_profile(rest) {
        Ok(p) => p,
        Err(code) => return code,
    };
    match servet::registry::compute_advice(&profile, &query) {
        Ok(outcome) => {
            emit_outcome(&outcome, has_flag(rest, "--json"));
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Parse the shared search flags (`--strategy`, `--seed`, budget knobs)
/// into the [`servet::tune::TuneOptions`] both the local searcher and
/// the registry `tune` op consume.
fn parse_tune_options(args: &[String]) -> Result<servet::tune::TuneOptions, String> {
    use servet::tune::{Strategy, TuneOptions};
    let strategy = match flag_value(args, "--strategy") {
        None => Strategy::Line,
        Some(s) => Strategy::parse(s).ok_or_else(|| {
            format!("unknown strategy '{s}'; use exhaustive | line | neighborhood | monte-carlo")
        })?,
    };
    let mut options = TuneOptions::new(strategy);
    if let Some(v) = flag_value(args, "--seed").and_then(|v| v.parse().ok()) {
        options.seed = v;
    }
    if let Some(v) = flag_value(args, "--sweeps").and_then(|v| v.parse().ok()) {
        options.sweeps = v;
    }
    if let Some(v) = flag_value(args, "--steps").and_then(|v| v.parse().ok()) {
        options.steps = v;
    }
    if let Some(v) = flag_value(args, "--samples").and_then(|v| v.parse().ok()) {
        options.samples = v;
    }
    Ok(options)
}

/// Human rendering of a tuning outcome; `analytic` is the baseline
/// `(config, score)` when the caller could derive one.
fn print_tune_outcome(
    outcome: &servet::tune::TuneOutcome,
    analytic: Option<(&servet::tune::Config, f64)>,
) {
    println!(
        "{} search over {} ({} points, digest {}):",
        outcome.strategy.name(),
        outcome.oracle,
        outcome.space_len,
        &outcome.space_digest[..8.min(outcome.space_digest.len())]
    );
    let show = |config: &servet::tune::Config| {
        config
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "  best: {}  score {:.1} ({} evaluations)",
        show(&outcome.best),
        outcome.best_score,
        outcome.evaluations
    );
    if let Some((config, score)) = analytic {
        let verdict = if outcome.best_score <= score * 1.001 {
            "search matched or beat the advice"
        } else {
            "analytic advice won"
        };
        println!(
            "  analytic: {}  score {score:.1}  ratio {:.3} — {verdict}",
            show(config),
            outcome.best_score / score
        );
    }
}

fn cmd_tune(args: &[String]) -> i32 {
    use servet::sim::presets;
    use servet::tune::{analytic_config, compare, tune, ProfileOracle, SimOracle};

    if has_flag(args, "--zoo") {
        return cmd_tune_zoo(args);
    }
    let options = match parse_tune_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let n: usize = flag_value(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
        .max(8);
    let workers: usize = flag_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        })
        .max(1);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    // Two oracles: a measured profile prices the kernel with the
    // closed-form model; a simulated preset replays its access trace.
    let (outcome, analytic) = if has_flag(args, "--profile") {
        let profile = match load_profile(args) {
            Ok(p) => p,
            Err(code) => return code,
        };
        let oracle = ProfileOracle::new(profile, n);
        let space = oracle.space();
        let config = analytic_config(oracle.profile(), &space);
        let score = servet::tune::Oracle::evaluate(&oracle, &config);
        (
            tune(&oracle, &space, &options, workers),
            Some((config, score)),
        )
    } else {
        let machine = flag_value(args, "--machine").unwrap_or("tiny_smp");
        let spec = match machine {
            "dunnington" => presets::dunnington(),
            "dempsey" => presets::dempsey(),
            "athlon3200" => presets::athlon3200(),
            "tiny_smp" | "tiny" => presets::tiny_smp(),
            "tiny_shared_l2" => presets::tiny_shared_l2(),
            other => {
                eprintln!(
                    "unknown machine '{other}'; use dunnington | dempsey | athlon3200 | \
                     tiny_smp | tiny_shared_l2"
                );
                return 2;
            }
        };
        let oracle = SimOracle::new(spec, seed, n);
        let space = oracle.space();
        // The baseline an analytically-advised code would run: advice
        // from the ground-truth profile, snapped onto the same grid.
        let truth = compare::ground_truth_profile(oracle.spec());
        let config = analytic_config(&truth, &space);
        let score = servet::tune::Oracle::evaluate(&oracle, &config);
        (
            tune(&oracle, &space, &options, workers),
            Some((config, score)),
        )
    };

    if has_flag(args, "--json") {
        println!("{}", outcome.to_json());
    } else {
        let (config, score) = analytic.as_ref().expect("baseline always derived");
        print_tune_outcome(&outcome, Some((config, *score)));
    }
    if let Some(out) = flag_value(args, "--out") {
        if let Err(e) = servet::core::profile::write_atomic(out, outcome.to_json().as_bytes()) {
            eprintln!("cannot write {out}: {e}");
            return 1;
        }
        println!("tune report written to {out}");
    }
    0
}

/// `servet tune --zoo`: race the search strategies against the analytic
/// advice across the seeded machine population, write the
/// `BENCH_tune.json` artifact, and (with `--check`) gate on parity.
fn cmd_tune_zoo(args: &[String]) -> i32 {
    use servet::tune::{run_compare, CompareConfig, Strategy};

    let machines: usize = flag_value(args, "--machines")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let workers: usize = flag_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        });
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let mut config = CompareConfig::new(machines, workers, seed);
    if let Some(n) = flag_value(args, "--n").and_then(|v| v.parse().ok()) {
        config.n = n;
    }
    if let Some(e) = flag_value(args, "--epsilon").and_then(|v| v.parse().ok()) {
        config.epsilon = e;
    }
    if let Some(list) = flag_value(args, "--strategies") {
        let mut strategies = Vec::new();
        for name in list.split(',').filter(|s| !s.is_empty()) {
            match Strategy::parse(name) {
                Some(s) => strategies.push(s),
                None => {
                    eprintln!("unknown strategy '{name}' in --strategies");
                    return 2;
                }
            }
        }
        if strategies.is_empty() {
            eprintln!("--strategies lists no strategies");
            return 2;
        }
        config.strategies = strategies;
    }
    let out = flag_value(args, "--out").unwrap_or("BENCH_tune.json");

    eprintln!(
        "tune zoo: {machines} machines (seed {seed}), kernel n={}, {} worker(s), \
         strategies {} ...",
        config.n,
        config.workers,
        config
            .strategies
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let report = run_compare(&config);
    for s in &report.summary {
        println!(
            "{:<12} parity {:>5.1}%  ({} matched, {} improved, of {})  \
             geo-mean ratio {:.3}  {:.0} evals/machine",
            s.strategy.name(),
            100.0 * s.parity,
            s.matched,
            s.improved,
            s.total,
            s.mean_ratio,
            s.mean_evaluations
        );
    }
    if let Err(e) = servet::core::profile::write_atomic(out, report.to_json().as_bytes()) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    println!("tune comparison written to {out}");

    if has_flag(args, "--check") {
        let min_parity: f64 = flag_value(args, "--min-parity")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.9);
        let mut failed = false;
        for s in &report.summary {
            if s.parity < min_parity {
                eprintln!(
                    "tune --check FAILED: {} parity {:.1}% below {:.1}%",
                    s.strategy.name(),
                    100.0 * s.parity,
                    100.0 * min_parity
                );
                failed = true;
            }
        }
        if failed {
            return 1;
        }
        println!(
            "tune --check passed: every strategy at or above {:.1}% parity",
            100.0 * min_parity
        );
    }
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    let Some(dir) = flag_value(args, "--dir") else {
        eprintln!(
            "usage: servet serve --dir DIR [--addr HOST:PORT] [--read-timeout-ms N] \
             [--workers N] [--backlog N] [--max-conns N] [--drain-grace-ms N]"
        );
        return 2;
    };
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let read_timeout_ms: u64 = flag_value(args, "--read-timeout-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let defaults = ServerConfig::default();
    let workers: usize = flag_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.workers);
    let backlog: usize = flag_value(args, "--backlog")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.backlog);
    let max_conns: usize = flag_value(args, "--max-conns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.max_conns);
    let drain_grace_ms: u64 = flag_value(args, "--drain-grace-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.drain_grace.as_millis() as u64);
    let registry = match Registry::open(dir) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("cannot open registry at {dir}: {e}");
            return 1;
        }
    };
    // backlog 0 is meaningful (rendezvous: admit only when a worker is
    // already waiting), so it is passed through unclamped.
    let config = ServerConfig {
        read_timeout: Duration::from_millis(read_timeout_ms.max(1)),
        workers: workers.max(1),
        backlog,
        max_conns: max_conns.max(1),
        drain_grace: Duration::from_millis(drain_grace_ms),
        ..defaults
    };
    match serve(registry, addr, config) {
        Ok(handle) => {
            println!(
                "servet-registry: serving profiles from {dir} on {} \
                 ({} workers, queue {}, up to {} connections)",
                handle.addr(),
                workers.max(1),
                backlog,
                max_conns.max(1)
            );
            handle.join();
            0
        }
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            1
        }
    }
}

fn connect(args: &[String]) -> Result<RegistryClient, i32> {
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    RegistryClient::connect(addr).map_err(|e| {
        eprintln!("cannot connect to registry at {addr}: {e}");
        1
    })
}

fn cmd_query(args: &[String]) -> i32 {
    let usage = "usage: servet query <put|get|list|advise|tune|stats> [--addr HOST:PORT] ...";
    let Some(what) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let rest = &args[1..];
    let json = has_flag(rest, "--json");
    match what.as_str() {
        "put" => {
            let profile = match load_profile(rest) {
                Ok(p) => p,
                Err(code) => return code,
            };
            let mut client = match connect(rest) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.put(&profile, flag_value(rest, "--name")) {
                Ok(digest) => {
                    println!("stored {digest}");
                    0
                }
                Err(e) => {
                    eprintln!("put failed: {e}");
                    1
                }
            }
        }
        "get" => {
            let Some(key) = flag_value(rest, "--key") else {
                eprintln!("missing --key KEY");
                return 2;
            };
            let mut client = match connect(rest) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.get_profile(key) {
                Ok((digest, profile)) => {
                    if json {
                        println!("{}", profile.to_json());
                    } else {
                        println!("digest {digest}");
                        print_profile(&profile);
                    }
                    0
                }
                Err(e) => {
                    eprintln!("get failed: {e}");
                    1
                }
            }
        }
        "list" => {
            let mut client = match connect(rest) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.list() {
                Ok(entries) => {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&entries).expect("entries serialize")
                        );
                    } else if entries.is_empty() {
                        println!("registry is empty");
                    } else {
                        for e in entries {
                            println!(
                                "{}  {:<16} {:>3} cores  {} cache level(s)  {}",
                                &e.digest[..12],
                                e.machine,
                                e.total_cores,
                                e.cache_levels,
                                e.aliases.join(", ")
                            );
                        }
                    }
                    0
                }
                Err(e) => {
                    eprintln!("list failed: {e}");
                    1
                }
            }
        }
        "advise" => {
            let Some(kind) = rest.first() else {
                eprintln!(
                    "usage: servet query advise <threads|tile|bcast|padding> --key KEY [flags]"
                );
                return 2;
            };
            let flags = &rest[1..];
            let Some(key) = flag_value(flags, "--key") else {
                eprintln!("missing --key KEY");
                return 2;
            };
            let query = match parse_advice_query(kind, flags) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            };
            let mut client = match connect(flags) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.advise(key, &query) {
                Ok((digest, cached, outcome)) => {
                    if !json {
                        let origin = if cached { "memoized" } else { "computed" };
                        println!("profile {digest} ({origin}):");
                    }
                    emit_outcome(&outcome, json);
                    0
                }
                Err(e) => {
                    eprintln!("advise failed: {e}");
                    1
                }
            }
        }
        "tune" => {
            let Some(key) = flag_value(rest, "--key") else {
                eprintln!("missing --key KEY");
                return 2;
            };
            let options = match parse_tune_options(rest) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            };
            let n: usize = flag_value(rest, "--n")
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            let query = servet::registry::TuneQuery {
                space: None,
                options,
                n,
            };
            let mut client = match connect(rest) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.tune(key, &query) {
                Ok((digest, cached, outcome)) => {
                    if json {
                        println!("{}", outcome.to_json());
                    } else {
                        let origin = if cached { "memoized" } else { "computed" };
                        println!("profile {digest} ({origin}):");
                        print_tune_outcome(&outcome, None);
                    }
                    0
                }
                Err(e) => {
                    eprintln!("tune failed: {e}");
                    1
                }
            }
        }
        "stats" => {
            let mut client = match connect(rest) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.stats() {
                Ok(stats) => {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&stats).expect("stats serialize")
                        );
                    } else {
                        println!(
                            "profiles {}  requests {}  advice hits/misses/evictions {}/{}/{}  \
                             profile-cache hits/misses {}/{}",
                            stats.profiles,
                            stats.requests,
                            stats.advice_hits,
                            stats.advice_misses,
                            stats.advice_evictions,
                            stats.profile_hits,
                            stats.profile_misses
                        );
                        println!(
                            "accept queue: accepted {}  rejected {}  depth {}  high-water {}  \
                             drain-killed {}",
                            stats.accept.accepted,
                            stats.accept.rejected,
                            stats.accept.queue_depth,
                            stats.accept.queue_depth_max,
                            stats.accept.drain_killed
                        );
                        println!(
                            "event loop: conns {}/{} (open/peak)  ready {}  wakeups {}  \
                             partial-reads {}  deadline-kills {}  oversized {}",
                            stats.events.conns_open,
                            stats.events.conns_peak,
                            stats.events.ready_events,
                            stats.events.wakeups,
                            stats.events.partial_reads,
                            stats.events.deadline_kills,
                            stats.events.oversized_rejected
                        );
                        if !stats.ops.is_empty() {
                            println!("request latency per op:");
                            for op in &stats.ops {
                                println!(
                                    "  {:<8} n={:<8} mean={:<10} p50={:<10} p99={:<10} \
                                     p999={:<10} max={}",
                                    op.op,
                                    op.count,
                                    format_ns(if op.count == 0 {
                                        0
                                    } else {
                                        op.total_ns / op.count
                                    }),
                                    format_ns(op.p50_ns),
                                    format_ns(op.p99_ns),
                                    format_ns(op.p999_ns),
                                    format_ns(op.max_ns),
                                );
                            }
                        }
                    }
                    0
                }
                Err(e) => {
                    eprintln!("stats failed: {e}");
                    1
                }
            }
        }
        other => {
            eprintln!("unknown query '{other}'; {usage}");
            2
        }
    }
}

/// Streams each zoo machine's measured profile into a registry, riding
/// out overload rejections and dropped connections with the retrying
/// client. One sink per worker, so no synchronization is needed.
struct RegistrySink {
    client: servet::registry::RetryingRegistryClient,
}

impl servet::core::zoo::ProfileSink for RegistrySink {
    fn publish(
        &mut self,
        machine: &servet::core::zoo::ZooMachine,
        report: &servet::core::SuiteReport,
        _manifest: &servet::core::RunManifest,
    ) -> std::io::Result<()> {
        self.client
            .put(&report.profile, Some(&machine.spec.name))
            .map(|_digest| ())
    }
}

fn cmd_zoo(args: &[String]) -> i32 {
    use servet::core::zoo::{run_zoo, ProfileSink, ZooConfig};
    use servet::registry::{serve, RetryPolicy, RetryingRegistryClient, ServerConfig};

    let machines: usize = flag_value(args, "--machines")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let workers: usize = flag_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(1, 8)
        });
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let out = flag_value(args, "--out").unwrap_or("zoo_report.json");
    let no_stream = has_flag(args, "--no-stream");

    // Where profiles stream to: an external registry (--addr), a
    // self-hosted one over --dir or a temp dir (the default), or
    // nowhere (--no-stream).
    let mut embedded: Option<servet::registry::ServerHandle> = None;
    let stream_addr: Option<std::net::SocketAddr> = if no_stream {
        None
    } else if let Some(addr) = flag_value(args, "--addr") {
        match std::net::ToSocketAddrs::to_socket_addrs(&addr) {
            Ok(mut addrs) => addrs.next(),
            Err(e) => {
                eprintln!("cannot resolve {addr}: {e}");
                return 2;
            }
        }
    } else {
        let dir = flag_value(args, "--dir")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("servet-zoo-{}", std::process::id()))
            });
        let registry = match Registry::open(&dir) {
            Ok(r) => Arc::new(r),
            Err(e) => {
                eprintln!("cannot open registry at {}: {e}", dir.display());
                return 1;
            }
        };
        let handle = match serve(registry, "127.0.0.1:0", ServerConfig::default()) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot self-host a registry: {e}");
                return 1;
            }
        };
        eprintln!(
            "zoo: self-hosted registry on {} (store: {})",
            handle.addr(),
            dir.display()
        );
        let addr = handle.addr();
        embedded = Some(handle);
        Some(addr)
    };

    let mb: usize = flag_value(args, "--mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut config = ZooConfig::new(machines, workers, seed);
    config.mb_machines = mb;
    eprintln!(
        "zoo: measuring {} machines ({machines} standard + {mb} MB-range, seed {seed}) on {} worker(s) ...",
        config.population_size(),
        config.workers.max(1)
    );
    let report = match run_zoo(&config, |worker| {
        Ok(stream_addr.map(|addr| {
            // Decorrelate the workers' retry backoff streams: a shared
            // seed would make every rejected worker sleep in lockstep
            // and re-collide on the same accept queue.
            let policy = RetryPolicy {
                jitter_seed: seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ..RetryPolicy::default()
            };
            Box::new(RegistrySink {
                client: RetryingRegistryClient::new(addr, policy),
            }) as Box<dyn ProfileSink>
        }))
    }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("zoo run failed: {e}");
            return 1;
        }
    };

    let acc = &report.accuracy;
    println!(
        "cache-size detection: {}/{} sizes correct ({:.1}%), level count right on {}/{} machines",
        acc.cache_sizes_correct,
        acc.cache_sizes_total,
        100.0 * acc.cache_size_accuracy(),
        acc.level_count_correct,
        acc.machines
    );
    println!(
        "sharing detection:    {}/{} levels correct ({:.1}%)",
        acc.sharing_correct,
        acc.sharing_total,
        100.0 * acc.sharing_accuracy()
    );
    if acc.padding_total > 0 {
        println!(
            "padding advice:       {}/{} machines advised >= their line size ({:.1}%)",
            acc.padding_correct,
            acc.padding_total,
            100.0 * acc.padding_accuracy()
        );
    }
    println!(
        "comm probe-size fallbacks (no cache detected): {}",
        acc.probe_fallbacks
    );
    if !report.stage_times.is_empty() {
        println!("stage times over the population (virtual seconds):");
        for (stage, stats) in &report.stage_times {
            println!(
                "  {:<16} min {:>8.2}  mean {:>8.2}  max {:>8.2}  total {:>9.1}",
                stage, stats.min_s, stats.mean_s, stats.max_s, stats.total_s
            );
        }
    }

    // Registry-side accounting: how many profiles landed and how the
    // accept queue coped with the fan-in.
    if let Some(addr) = stream_addr {
        let mut client = RetryingRegistryClient::new(addr, RetryPolicy::default());
        match client.stats() {
            Ok(stats) => println!(
                "registry after streaming: {} profiles, {} requests, \
                 accept rejected {} (queue high-water {})",
                stats.profiles, stats.requests, stats.accept.rejected, stats.accept.queue_depth_max
            ),
            Err(e) => eprintln!("registry stats unavailable: {e}"),
        }
    }
    if let Some(handle) = embedded {
        handle.shutdown();
    }

    if let Err(e) = servet::core::profile::write_atomic(out, report.to_json().as_bytes()) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    println!("zoo report written to {out}");
    0
}

/// `servet loadgen`: hold a connection plateau against a registry while
/// driving request traffic through it, then report the latency
/// trajectory. `--check` turns the report into a pass/fail gate for CI.
fn cmd_loadgen(args: &[String]) -> i32 {
    use servet::registry::loadgen::{self, LoadgenConfig, Mode};

    let addr_str = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let addr = match std::net::ToSocketAddrs::to_socket_addrs(&addr_str).map(|mut a| a.next()) {
        Ok(Some(addr)) => addr,
        _ => {
            eprintln!("cannot resolve {addr_str}");
            return 2;
        }
    };
    let defaults = LoadgenConfig::default();
    let conns: usize = flag_value(args, "--conns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.conns);
    let ops: u64 = flag_value(args, "--ops")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.ops);
    let op_workers: usize = flag_value(args, "--op-workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.op_workers);
    let hold_ms: u64 = flag_value(args, "--hold-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.hold.as_millis() as u64);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.seed);
    let mode = match flag_value(args, "--mode").unwrap_or("closed") {
        "closed" => Mode::Closed,
        "open" => {
            let rate_hz: f64 = flag_value(args, "--rate")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1000.0);
            Mode::Open { rate_hz }
        }
        other => {
            eprintln!("unknown --mode '{other}' (closed|open)");
            return 2;
        }
    };
    let config = LoadgenConfig {
        addr,
        conns,
        ops,
        op_workers: op_workers.max(1),
        mode,
        hold: Duration::from_millis(hold_ms),
        seed,
        ..defaults
    };

    eprintln!(
        "loadgen: holding {conns} connection(s) against {addr} for {hold_ms} ms, \
         {ops} op(s) over {} worker(s) ...",
        config.op_workers
    );
    let report = match loadgen::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            return 1;
        }
    };

    println!(
        "held {}/{} conns  connect-failures {}  busy-rejects {}  early-closes {}",
        report.conns_opened,
        report.conns_target,
        report.connect_failures,
        report.busy_rejects,
        report.early_closes
    );
    if report.ops_requested > 0 {
        println!(
            "ops {}/{} ok ({} failed)  {:.0} ops/s",
            report.ops_done, report.ops_requested, report.ops_failed, report.throughput_ops_per_s
        );
        if let Some(l) = &report.latency {
            println!(
                "latency: mean={} p50={} p99={} p999={} max={}",
                format_ns(l.mean_ns),
                format_ns(l.p50_ns),
                format_ns(l.p99_ns),
                format_ns(l.p999_ns),
                format_ns(l.max_ns)
            );
        }
    }
    if let Some(out) = flag_value(args, "--out") {
        if let Err(e) = servet::core::profile::write_atomic(out, report.to_json().as_bytes()) {
            eprintln!("cannot write {out}: {e}");
            return 1;
        }
        println!("loadgen report written to {out}");
    }

    // CI gates: --check demands a clean steady state, --max-p99-ms
    // bounds the request-latency tail.
    let mut failed = false;
    if has_flag(args, "--check") && !report.clean() {
        eprintln!("loadgen --check FAILED: rejects, early closes, or failed ops observed");
        failed = true;
    }
    if let Some(max_p99_ms) = flag_value(args, "--max-p99-ms").and_then(|v| v.parse::<u64>().ok()) {
        let p99_ns = report.latency.map(|l| l.p99_ns).unwrap_or(0);
        if p99_ns > max_p99_ms * 1_000_000 {
            eprintln!(
                "loadgen --max-p99-ms FAILED: p99 {} exceeds {} ms",
                format_ns(p99_ns),
                max_p99_ms
            );
            failed = true;
        }
    }
    if failed {
        1
    } else {
        0
    }
}

fn print_profile(profile: &MachineProfile) {
    println!(
        "machine '{}': {} cores/node, {} total, {} B pages",
        profile.machine, profile.cores_per_node, profile.total_cores, profile.page_size
    );
    println!("cache hierarchy:");
    for level in &profile.cache_levels {
        let shared = profile.cores_sharing_cache(level.level, 0);
        let sharing = if shared.is_empty() {
            "private".to_string()
        } else {
            format!("core 0 shares with {shared:?}")
        };
        println!(
            "  L{}: {:>8} KB  [{:?}] {}",
            level.level,
            level.size / 1024,
            level.method,
            sharing
        );
    }
    if let Some(micro) = &profile.micro {
        if let Some(line) = micro.line_size {
            println!("  line size: {line} B");
        }
        if let Some(ways) = micro.l1_associativity {
            println!("  L1 associativity: {ways}-way");
        }
        if let Some(entries) = micro.tlb_entries {
            println!("  data TLB: >= {entries} entries");
        }
    }
    if let Some(fs) = &profile.false_sharing {
        match fs.advised_padding {
            Some(pad) => println!("false sharing: pad per-thread data to {pad} B"),
            None => println!("false sharing: no quiet stride found in the sweep"),
        }
        if let Some(model) = &fs.comm_model {
            println!(
                "  on-chip handoff: {:.0} cycles per {} B line",
                model.per_line_cycles, model.line_bytes
            );
        }
    }
    if let Some(memory) = &profile.memory {
        println!(
            "memory: {:.2} GB/s isolated, {} contention class(es)",
            memory.reference_gbs,
            memory.overheads.len()
        );
        for class in &memory.overheads {
            println!(
                "  {:.2} GB/s within groups of {:?}",
                class.bandwidth_gbs,
                class.groups.iter().map(Vec::len).collect::<Vec<_>>()
            );
        }
    }
    if let Some(comm) = &profile.communication {
        println!("communication layers (probe {} B):", comm.probe_size);
        for (i, layer) in comm.layers.iter().enumerate() {
            let degradation = layer
                .scalability
                .last()
                .map(|&(n, _, s)| format!(", {s:.1}x at {n} concurrent msgs"))
                .unwrap_or_default();
            println!(
                "  layer {i}: {:.2} us, {} pairs{degradation}",
                layer.latency_us,
                layer.pairs.len()
            );
        }
    }
}
